/** @file Timing-model property tests for the dataflow engine. */
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.h"
#include <cmath>

#include "datasets/dataset.h"

namespace flowgnn {
namespace {

EngineConfig
cfg(std::uint32_t pn, std::uint32_t pe, std::uint32_t pa, std::uint32_t ps,
    PipelineMode mode = PipelineMode::kFlowGnn)
{
    EngineConfig c;
    c.p_node = pn;
    c.p_edge = pe;
    c.p_apply = pa;
    c.p_scatter = ps;
    c.mode = mode;
    return c;
}

std::uint64_t
cycles(const Model &model, const GraphSample &s, EngineConfig c)
{
    return Engine(model, c).run(s).stats.total_cycles;
}

class TimingFixture : public ::testing::Test
{
  protected:
    TimingFixture()
        : sample_(make_sample(DatasetKind::kMolHiv, 5)),
          gcn_(make_model(ModelKind::kGcn, sample_.node_dim(),
                          sample_.edge_dim()))
    {
    }

    GraphSample sample_;
    Model gcn_;
};

TEST_F(TimingFixture, PipelineModesAreStrictlyOrdered)
{
    // Fig. 4 / Fig. 9: each architectural step reduces latency.
    auto base = cfg(1, 1, 1, 1, PipelineMode::kNonPipelined);
    std::uint64_t np = cycles(gcn_, sample_, base);
    base.mode = PipelineMode::kFixedPipeline;
    std::uint64_t fp = cycles(gcn_, sample_, base);
    base.mode = PipelineMode::kBaselineDataflow;
    std::uint64_t bd = cycles(gcn_, sample_, base);
    std::uint64_t fg =
        cycles(gcn_, sample_, cfg(2, 4, 1, 1, PipelineMode::kFlowGnn));
    EXPECT_GT(np, fp);
    EXPECT_GE(fp, bd);
    EXPECT_GT(bd, fg);
}

TEST_F(TimingFixture, IntraNodePipeliningBeatsWholeNodeHandoff)
{
    // Same unit counts: FlowGNN's chunked streaming must not lose to
    // the baseline's whole-node handoff.
    std::uint64_t baseline = cycles(
        gcn_, sample_, cfg(1, 1, 1, 1, PipelineMode::kBaselineDataflow));
    std::uint64_t flowgnn =
        cycles(gcn_, sample_, cfg(1, 1, 1, 1, PipelineMode::kFlowGnn));
    EXPECT_LE(flowgnn, baseline);
}

TEST_F(TimingFixture, MoreApplyParallelismNeverSlower)
{
    std::uint64_t prev = cycles(gcn_, sample_, cfg(2, 4, 1, 8));
    for (std::uint32_t pa : {2u, 4u, 8u}) {
        std::uint64_t cur = cycles(gcn_, sample_, cfg(2, 4, pa, 8));
        EXPECT_LE(cur, prev) << "Papply=" << pa;
        prev = cur;
    }
}

TEST_F(TimingFixture, MoreScatterParallelismNeverSlower)
{
    std::uint64_t prev = cycles(gcn_, sample_, cfg(2, 4, 4, 1));
    for (std::uint32_t ps : {2u, 4u, 8u}) {
        std::uint64_t cur = cycles(gcn_, sample_, cfg(2, 4, 4, ps));
        EXPECT_LE(cur, prev) << "Pscatter=" << ps;
        prev = cur;
    }
}

TEST_F(TimingFixture, MoreNodeParallelismHelpsWhenNtBound)
{
    // GCN's NT dominates on molecular graphs; doubling NT units from 1
    // to 4 must reduce latency substantially.
    std::uint64_t p1 = cycles(gcn_, sample_, cfg(1, 4, 2, 2));
    std::uint64_t p4 = cycles(gcn_, sample_, cfg(4, 4, 2, 2));
    EXPECT_LT(p4, p1);
}

TEST_F(TimingFixture, StatsAreInternallyConsistent)
{
    Engine engine(gcn_, cfg(2, 4, 4, 8));
    RunResult r = engine.run(sample_);
    const RunStats &st = r.stats;
    std::uint64_t phases = std::accumulate(st.phase_cycles.begin(),
                                           st.phase_cycles.end(),
                                           std::uint64_t{0});
    EXPECT_EQ(st.total_cycles,
              phases + st.head_cycles + st.load_cycles);
    EXPECT_EQ(st.nt_units.size(), 2u);
    EXPECT_EQ(st.mp_units.size(), 4u);
    for (const auto &u : st.nt_units) {
        EXPECT_LE(u.utilization(), 1.0);
        EXPECT_GT(u.busy, 0u);
    }
    EXPECT_GE(st.queue_peak_occupancy, 1u);
    EXPECT_LE(st.queue_peak_occupancy, engine.config().queue_depth);
    EXPECT_GT(st.queue_total_pushes, 0u);
}

TEST_F(TimingFixture, MpWorkCoversEveryEdgeEveryScatterPhase)
{
    // GCN: 5 conv layers -> 5 scatter phases (encoder fused with the
    // first), each streaming ceil(dim/Pscatter) granules per edge.
    EngineConfig c = cfg(2, 4, 4, 4);
    Engine engine(gcn_, c);
    RunResult r = engine.run(sample_);
    std::uint64_t total_work =
        std::accumulate(r.stats.mp_edge_work.begin(),
                        r.stats.mp_edge_work.end(), std::uint64_t{0});
    std::uint64_t granules = (100 + c.p_scatter - 1) / c.p_scatter;
    EXPECT_EQ(total_work, sample_.num_edges() * granules * 5);
}

TEST_F(TimingFixture, ObservedImbalanceMatchesStaticAnalysis)
{
    EngineConfig c = cfg(1, 4, 4, 4);
    RunResult r = Engine(gcn_, c).run(sample_);
    double observed = r.stats.observed_mp_imbalance();
    EXPECT_GE(observed, 0.0);
    EXPECT_LE(observed, 1.0);
}

TEST_F(TimingFixture, DeterministicAcrossRuns)
{
    Engine engine(gcn_, cfg(2, 4, 4, 8));
    RunResult a = engine.run(sample_);
    RunResult b = engine.run(sample_);
    EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
    EXPECT_EQ(a.embeddings, b.embeddings);
    EXPECT_EQ(a.prediction, b.prediction);
}

TEST_F(TimingFixture, LatencyConversionUsesClock)
{
    RunResult r = Engine(gcn_, cfg(2, 4, 4, 8)).run(sample_);
    double ms300 = r.latency_ms(300.0);
    double ms150 = r.latency_ms(150.0);
    EXPECT_NEAR(ms150, 2.0 * ms300, 1e-9);
    EXPECT_GT(ms300, 0.0);
}

TEST(EngineTiming, QueueDepthOneStillCompletes)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 7);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    EngineConfig c = cfg(2, 4, 4, 8);
    c.queue_depth = 1;
    RunResult r = Engine(m, c).run(s);
    EXPECT_GT(r.stats.total_cycles, 0u);
    // Tight queues should show adapter backpressure.
    EXPECT_GE(r.stats.adapter_stall_cycles, 0u);
}

TEST(EngineTiming, DeepQueuesReduceStalls)
{
    GraphSample s = make_sample(DatasetKind::kHep, 0);
    Model m = make_model(ModelKind::kGcn, s.node_dim(), s.edge_dim());
    EngineConfig shallow = cfg(2, 4, 4, 8);
    shallow.queue_depth = 1;
    EngineConfig deep = cfg(2, 4, 4, 8);
    deep.queue_depth = 64;
    std::uint64_t stalls_shallow =
        Engine(m, shallow).run(s).stats.adapter_stall_cycles;
    std::uint64_t stalls_deep =
        Engine(m, deep).run(s).stats.adapter_stall_cycles;
    EXPECT_LE(stalls_deep, stalls_shallow);
}

TEST(EngineTiming, GatUsesTwoMpRoundsPerLayer)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 2);
    Model gat = make_model(ModelKind::kGat, s.node_dim(), s.edge_dim());
    EngineConfig c = cfg(1, 2, 4, 4);
    RunResult r = Engine(gat, c).run(s);
    std::uint64_t total_work =
        std::accumulate(r.stats.mp_edge_work.begin(),
                        r.stats.mp_edge_work.end(), std::uint64_t{0});
    std::uint64_t granules = (64 + c.p_scatter - 1) / c.p_scatter;
    // 5 attention layers x 2 rounds each.
    EXPECT_EQ(total_work, s.num_edges() * granules * 10);
}

TEST(EngineTiming, VirtualNodeAbsorbedByDataflow)
{
    // Paper Fig. 6: the dataflow pipeline hides the virtual node's
    // giant degree. GIN+VN latency should stay within a modest factor
    // of plain GIN despite the VN touching every node.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 9);
    Model gin = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    Model vn = make_model(ModelKind::kGinVn, s.node_dim(), s.edge_dim());
    EngineConfig c = cfg(2, 4, 4, 8);
    std::uint64_t base = Engine(gin, c).run(s).stats.total_cycles;
    std::uint64_t with_vn = Engine(vn, c).run(s).stats.total_cycles;
    EXPECT_LT(with_vn, base * 2);
    EXPECT_GT(with_vn, base); // it is still more work
}

TEST(EngineTiming, EmptyGraphCompletes)
{
    GraphSample s;
    s.graph.num_nodes = 3;
    s.node_features = Matrix(3, 9, 0.1f);
    Model m = make_model(ModelKind::kGcn, 9, 0);
    RunResult r = Engine(m, cfg(2, 4, 4, 8)).run(s);
    EXPECT_GT(r.stats.total_cycles, 0u);
    EXPECT_TRUE(std::isfinite(r.prediction));
}

TEST(EngineTiming, SingleNodeGraphCompletes)
{
    GraphSample s;
    s.graph.num_nodes = 1;
    s.node_features = Matrix(1, 9, 0.1f);
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, 9, 0);
        RunResult r = Engine(m, cfg(2, 4, 4, 8)).run(s);
        EXPECT_GT(r.stats.total_cycles, 0u) << model_name(kind);
    }
}

} // namespace
} // namespace flowgnn
