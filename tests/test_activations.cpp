/** @file Activation and softmax unit tests. */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/activations.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(Activations, ReluClampsNegatives)
{
    EXPECT_EQ(activate(-1.0f, Activation::kRelu), 0.0f);
    EXPECT_EQ(activate(2.5f, Activation::kRelu), 2.5f);
    EXPECT_EQ(activate(0.0f, Activation::kRelu), 0.0f);
}

TEST(Activations, LeakyReluUsesGatSlope)
{
    EXPECT_FLOAT_EQ(activate(-1.0f, Activation::kLeakyRelu), -0.2f);
    EXPECT_FLOAT_EQ(activate(3.0f, Activation::kLeakyRelu), 3.0f);
}

TEST(Activations, EluMatchesDefinition)
{
    EXPECT_FLOAT_EQ(activate(1.0f, Activation::kElu), 1.0f);
    EXPECT_NEAR(activate(-1.0f, Activation::kElu), std::expm1(-1.0f),
                1e-6f);
}

TEST(Activations, SigmoidAndTanhRangeAndSymmetry)
{
    EXPECT_FLOAT_EQ(activate(0.0f, Activation::kSigmoid), 0.5f);
    EXPECT_NEAR(activate(10.0f, Activation::kSigmoid), 1.0f, 1e-4f);
    EXPECT_FLOAT_EQ(activate(0.0f, Activation::kTanh), 0.0f);
    EXPECT_FLOAT_EQ(activate(-2.0f, Activation::kTanh),
                    -activate(2.0f, Activation::kTanh));
}

TEST(Activations, IdentityIsNoop)
{
    Vec x{-1, 0, 3};
    Vec before = x;
    apply_activation(x, Activation::kIdentity);
    EXPECT_EQ(x, before);
}

TEST(Activations, ApplyActivationMatchesScalar)
{
    Vec x{-2, -0.5, 0, 0.5, 2};
    for (auto act : {Activation::kRelu, Activation::kLeakyRelu,
                     Activation::kElu, Activation::kSigmoid,
                     Activation::kTanh}) {
        Vec v = x;
        apply_activation(v, act);
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_FLOAT_EQ(v[i], activate(x[i], act))
                << activation_name(act);
    }
}

TEST(Activations, NamesAreDistinct)
{
    EXPECT_STREQ(activation_name(Activation::kRelu), "relu");
    EXPECT_STRNE(activation_name(Activation::kElu),
                 activation_name(Activation::kTanh));
}

TEST(Softmax, SumsToOne)
{
    Vec p = softmax({1.0f, 2.0f, 3.0f});
    EXPECT_NEAR(sum(p), 1.0f, 1e-6f);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, InvariantToConstantShift)
{
    Vec a = softmax({1.0f, 2.0f, 3.0f});
    Vec b = softmax({101.0f, 102.0f, 103.0f});
    EXPECT_LT(max_abs_diff(a, b), 1e-6f);
}

TEST(Softmax, StableForLargeInputs)
{
    Vec p = softmax({1000.0f, 1000.0f});
    EXPECT_NEAR(p[0], 0.5f, 1e-6f);
    EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Softmax, UniformInputsUniformOutput)
{
    Vec p = softmax({4.0f, 4.0f, 4.0f, 4.0f});
    for (float v : p)
        EXPECT_NEAR(v, 0.25f, 1e-6f);
}

TEST(Softmax, EmptyInputYieldsEmpty)
{
    EXPECT_TRUE(softmax({}).empty());
}

} // namespace
} // namespace flowgnn
