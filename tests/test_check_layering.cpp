/**
 * @file
 * Fixture tests for the include-layering lint (flowgnn::check leg 2).
 * Each fixture materializes a small include-tree on disk, runs the
 * same run_layering_check() the check_layering binary wraps, and
 * asserts BOTH the exit code and the reported offending chain — a
 * lint that cannot prove it fails is not a gate.
 */
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "check/layering.h"

namespace fs = std::filesystem;
using namespace flowgnn::check;

namespace {

/** Temp source tree, removed on destruction. */
class TempTree
{
  public:
    TempTree()
    {
        root_ = fs::temp_directory_path() /
                ("flowgnn_layering_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        fs::remove_all(root_);
        fs::create_directories(root_);
    }
    ~TempTree() { fs::remove_all(root_); }

    void
    file(const std::string &rel, const std::string &contents)
    {
        fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << contents;
    }

    std::string
    spec(const std::string &contents)
    {
        fs::path p = root_ / "layering.spec";
        std::ofstream(p) << contents;
        return p.string();
    }

    std::string src() const { return (root_ / "src").string(); }

  private:
    fs::path root_;
};

constexpr const char *kSpec = R"(
layer base :
layer mid : base
layer top : mid
path base base
path mid mid
path top top
)";

} // namespace

TEST(CheckLayeringTest, CleanDagPassesWithExitZero)
{
    TempTree tree;
    tree.file("src/base/a.h", "// no includes\n");
    tree.file("src/mid/b.h", "#include \"base/a.h\"\n");
    tree.file("src/top/c.cpp",
              "#include \"mid/b.h\"\n#include \"base/a.h\"\n");
    std::ostringstream out;
    EXPECT_EQ(run_layering_check(tree.src(), tree.spec(kSpec), out), 0);
    EXPECT_NE(out.str().find("OK"), std::string::npos) << out.str();
}

TEST(CheckLayeringTest, BackEdgeFailsAndNamesTheChain)
{
    TempTree tree;
    tree.file("src/base/a.h", "#include \"top/c.h\"\n"); // illegal
    tree.file("src/mid/b.h", "#include \"base/a.h\"\n");
    tree.file("src/top/c.h", "// top\n");
    std::ostringstream out;
    EXPECT_EQ(run_layering_check(tree.src(), tree.spec(kSpec), out), 1);
    // The report names both endpoints of the offending edge and both
    // layers, so the CI log alone identifies the fix.
    EXPECT_NE(out.str().find("base/a.h"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("top/c.h"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("back-edge"), std::string::npos)
        << out.str();
}

TEST(CheckLayeringTest, IncludeCycleFailsAndPrintsClosedWalk)
{
    TempTree tree;
    // Guarded headers in a cycle *compile* (each expansion terminates)
    // — exactly why the lint must detect cycles structurally.
    tree.file("src/mid/x.h", "#include \"mid/y.h\"\n");
    tree.file("src/mid/y.h", "#include \"mid/z.h\"\n");
    tree.file("src/mid/z.h", "#include \"mid/x.h\"\n");
    std::ostringstream out;
    EXPECT_EQ(run_layering_check(tree.src(), tree.spec(kSpec), out), 1);
    EXPECT_NE(out.str().find("include cycle"), std::string::npos)
        << out.str();
    // The closed walk: x -> y -> z -> x (starting node repeated).
    EXPECT_NE(out.str().find("mid/x.h -> mid/y.h -> mid/z.h -> mid/x.h"),
              std::string::npos)
        << out.str();
}

TEST(CheckLayeringTest, UnmappedFileIsAViolation)
{
    TempTree tree;
    tree.file("src/rogue/new_subsystem.h", "// not in the spec\n");
    std::ostringstream out;
    EXPECT_EQ(run_layering_check(tree.src(), tree.spec(kSpec), out), 1);
    EXPECT_NE(out.str().find("rogue/new_subsystem.h"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("no path rule"), std::string::npos)
        << out.str();
}

TEST(CheckLayeringTest, LongestPrefixRuleCarvesFilesOutOfDirectories)
{
    std::istringstream spec(R"(
layer low :
layer high : low
path core low
path core/special. high
)");
    LayerSpec parsed = parse_layer_spec(spec);
    EXPECT_EQ(layer_of(parsed, "core/plain.h"), "low");
    EXPECT_EQ(layer_of(parsed, "core/special.h"), "high");
    EXPECT_EQ(layer_of(parsed, "core/special.cpp"), "high");
    EXPECT_EQ(layer_of(parsed, "elsewhere/x.h"), "");
}

TEST(CheckLayeringTest, TransitiveClosureAllowsIndirectDeps)
{
    std::istringstream spec(R"(
layer a :
layer b : a
layer c : b
path a a
path b b
path c c
)");
    LayerSpec parsed = parse_layer_spec(spec);
    // c never names a directly, but reaches it through b.
    EXPECT_TRUE(parsed.allowed.at("c").count("a"));
    EXPECT_FALSE(parsed.allowed.at("a").count("c"));
}

TEST(CheckLayeringTest, MalformedSpecExitsTwo)
{
    TempTree tree;
    tree.file("src/base/a.h", "// fine\n");
    std::ostringstream out;
    EXPECT_EQ(run_layering_check(
                  tree.src(),
                  tree.spec("layer base\npath base base\n"), out),
              2);
    EXPECT_NE(out.str().find("layer spec line 1"), std::string::npos)
        << out.str();

    std::ostringstream out2;
    EXPECT_EQ(run_layering_check(tree.src(),
                                 tree.spec("layer x : undefined_dep\n"
                                           "path x x\n"),
                                 out2),
              2);
}

TEST(CheckLayeringTest, MissingRootOrSpecExitsTwo)
{
    TempTree tree;
    std::ostringstream out;
    EXPECT_EQ(run_layering_check("/nonexistent/src",
                                 tree.spec(kSpec), out),
              2);
    std::ostringstream out2;
    EXPECT_EQ(run_layering_check(tree.src(),
                                 "/nonexistent/layering.spec", out2),
              2);
}
