/** @file Matrix / vector-op unit tests. */
#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), 1.5f);
    m.fill(-2.0f);
    EXPECT_EQ(m(2, 3), -2.0f);
}

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, RowAccessIsContiguous)
{
    Matrix m(2, 3);
    m(1, 0) = 1.0f;
    m(1, 1) = 2.0f;
    m(1, 2) = 3.0f;
    const float *row = m.row(1);
    EXPECT_EQ(row[0], 1.0f);
    EXPECT_EQ(row[2], 3.0f);
    Vec v = m.row_vec(1);
    EXPECT_EQ(v, (Vec{1.0f, 2.0f, 3.0f}));
}

TEST(Matrix, SetRowValidatesDimension)
{
    Matrix m(2, 3);
    m.set_row(0, {1, 2, 3});
    EXPECT_EQ(m(0, 1), 2.0f);
    EXPECT_THROW(m.set_row(0, {1, 2}), std::invalid_argument);
}

TEST(Matrix, EqualityIsElementwise)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    EXPECT_EQ(a, b);
    b(1, 1) = 2.0f;
    EXPECT_NE(a, b);
}

TEST(Ops, AddAndAxpy)
{
    Vec y{1, 2, 3}, x{10, 20, 30};
    add_inplace(y, x);
    EXPECT_EQ(y, (Vec{11, 22, 33}));
    axpy_inplace(y, 2.0f, x);
    EXPECT_EQ(y, (Vec{31, 62, 93}));
    EXPECT_EQ(add(x, x), (Vec{20, 40, 60}));
    EXPECT_EQ(sub(x, x), (Vec{0, 0, 0}));
}

TEST(Ops, SizeMismatchThrows)
{
    Vec y{1, 2}, x{1, 2, 3};
    EXPECT_THROW(add_inplace(y, x), std::invalid_argument);
    EXPECT_THROW(dot(y, x), std::invalid_argument);
    EXPECT_THROW(max_abs_diff(y, x), std::invalid_argument);
}

TEST(Ops, ScaleAndDotAndSum)
{
    Vec x{1, -2, 3};
    EXPECT_EQ(scale(x, -1.0f), (Vec{-1, 2, -3}));
    EXPECT_FLOAT_EQ(dot(x, x), 14.0f);
    EXPECT_FLOAT_EQ(sum(x), 2.0f);
    EXPECT_FLOAT_EQ(norm2({3, 4}), 5.0f);
}

TEST(Ops, MinMaxInplace)
{
    Vec y{1, 5, 3}, x{2, 2, 2};
    Vec y2 = y;
    max_inplace(y, x);
    EXPECT_EQ(y, (Vec{2, 5, 3}));
    min_inplace(y2, x);
    EXPECT_EQ(y2, (Vec{1, 2, 2}));
}

TEST(Ops, Concat)
{
    EXPECT_EQ(concat({{1, 2}, {}, {3}}), (Vec{1, 2, 3}));
    EXPECT_TRUE(concat({}).empty());
}

TEST(Ops, MaxAbsDiffVectorsAndMatrices)
{
    EXPECT_FLOAT_EQ(max_abs_diff(Vec{1, 2}, Vec{1, 2}), 0.0f);
    EXPECT_FLOAT_EQ(max_abs_diff(Vec{1, 2}, Vec{0, 5}), 3.0f);
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    b(0, 1) = -1.0f;
    EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.0f);
    Matrix c(3, 2);
    EXPECT_THROW(max_abs_diff(a, c), std::invalid_argument);
}

} // namespace
} // namespace flowgnn
