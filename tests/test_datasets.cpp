/** @file Synthetic dataset generator tests (Table IV fidelity). */
#include <gtest/gtest.h>

#include <cmath>

#include "datasets/dataset.h"

namespace flowgnn {
namespace {

TEST(DatasetSpec, TableIvRowsPresent)
{
    const DatasetSpec &hiv = dataset_spec(DatasetKind::kMolHiv);
    EXPECT_STREQ(hiv.name, "MolHIV");
    EXPECT_EQ(hiv.num_graphs, 4113u);
    EXPECT_TRUE(hiv.edge_features);

    const DatasetSpec &reddit = dataset_spec(DatasetKind::kReddit);
    EXPECT_EQ(reddit.num_graphs, 1u);
    EXPECT_EQ(reddit.scale, 64u);
    EXPECT_FALSE(reddit.edge_features);
}

TEST(Datasets, SamplesAreDeterministic)
{
    for (DatasetKind kind :
         {DatasetKind::kMolHiv, DatasetKind::kHep, DatasetKind::kCora}) {
        GraphSample a = make_sample(kind, 0);
        GraphSample b = make_sample(kind, 0);
        EXPECT_EQ(a.graph.edges, b.graph.edges);
        EXPECT_EQ(a.node_features, b.node_features);
    }
}

TEST(Datasets, DistinctIndicesDistinctGraphs)
{
    GraphSample a = make_sample(DatasetKind::kMolHiv, 0);
    GraphSample b = make_sample(DatasetKind::kMolHiv, 1);
    EXPECT_TRUE(a.graph.num_nodes != b.graph.num_nodes ||
                a.graph.edges != b.graph.edges);
}

TEST(Datasets, SamplesAreConsistent)
{
    for (DatasetKind kind : kAllDatasets) {
        GraphSample s = make_sample(kind, 0);
        EXPECT_TRUE(s.consistent()) << dataset_spec(kind).name;
        EXPECT_EQ(s.node_dim(), dataset_spec(kind).node_dim);
        EXPECT_EQ(s.edge_dim(), dataset_spec(kind).edge_dim);
    }
}

TEST(Datasets, IndexBoundsEnforced)
{
    EXPECT_THROW(make_sample(DatasetKind::kCora, 1), std::out_of_range);
    EXPECT_THROW(make_sample(DatasetKind::kMolHiv, 4113),
                 std::out_of_range);
    EXPECT_NO_THROW(make_sample(DatasetKind::kMolHiv, 4112));
}

TEST(Datasets, MolecularStatsNearTableIv)
{
    DatasetStats st = measure_dataset(DatasetKind::kMolHiv, 200);
    EXPECT_NEAR(st.avg_nodes, 25.3, 25.3 * 0.2);
    EXPECT_NEAR(st.avg_edges, 55.6, 55.6 * 0.25);
    EXPECT_TRUE(st.edge_features);
}

TEST(Datasets, HepStatsNearTableIv)
{
    DatasetStats st = measure_dataset(DatasetKind::kHep, 100);
    EXPECT_NEAR(st.avg_nodes, 49.1, 49.1 * 0.15);
    EXPECT_NEAR(st.avg_edges, 785.3, 785.3 * 0.15);
}

TEST(Datasets, HepGraphsAreK16)
{
    GraphSample s = make_sample(DatasetKind::kHep, 4);
    auto in = s.graph.in_degrees();
    for (auto d : in)
        EXPECT_EQ(d, 16u);
}

TEST(Datasets, CitationGraphsMatchExactCounts)
{
    GraphSample cora = make_sample(DatasetKind::kCora, 0);
    EXPECT_EQ(cora.num_nodes(), 2708u);
    EXPECT_EQ(cora.num_edges(), 5429u);
    GraphSample cs = make_sample(DatasetKind::kCiteSeer, 0);
    EXPECT_EQ(cs.num_nodes(), 3327u);
    EXPECT_EQ(cs.num_edges(), 4732u);
}

TEST(Datasets, PubMedMatchesExactCounts)
{
    GraphSample s = make_sample(DatasetKind::kPubMed, 0);
    EXPECT_EQ(s.num_nodes(), 19717u);
    EXPECT_EQ(s.num_edges(), 44338u);
}

TEST(Datasets, RedditScaledPreservesAverageDegree)
{
    GraphSample s = make_sample(DatasetKind::kReddit, 0);
    const DatasetSpec &spec = dataset_spec(DatasetKind::kReddit);
    EXPECT_EQ(s.num_nodes(),
              static_cast<NodeId>(std::llround(spec.avg_nodes / 64)));
    double deg = static_cast<double>(s.num_edges()) / s.num_nodes();
    double target = spec.avg_edges / spec.avg_nodes;
    EXPECT_NEAR(deg, target, target * 0.05);
}

TEST(Datasets, MolecularEdgeFeaturesMirrored)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 6);
    std::size_t bonds = s.num_edges() / 2;
    for (std::size_t b = 0; b < bonds; ++b)
        for (std::size_t c = 0; c < s.edge_dim(); ++c)
            EXPECT_EQ(s.edge_features(b, c),
                      s.edge_features(bonds + b, c));
}

TEST(SampleStream, CyclesThroughLimit)
{
    SampleStream stream(DatasetKind::kMolHiv, 3);
    EXPECT_EQ(stream.size(), 3u);
    GraphSample first = stream.next();
    stream.next();
    stream.next();
    GraphSample wrapped = stream.next();
    EXPECT_EQ(first.graph.edges, wrapped.graph.edges);
}

TEST(SampleStream, DefaultLimitIsDatasetSize)
{
    SampleStream stream(DatasetKind::kHep);
    EXPECT_EQ(stream.size(), 10000u);
    SampleStream capped(DatasetKind::kCora, 100);
    EXPECT_EQ(capped.size(), 1u);
}

} // namespace
} // namespace flowgnn
