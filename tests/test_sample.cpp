/** @file GraphSample and virtual-node augmentation tests. */
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/sample.h"
#include "tensor/rng.h"

namespace flowgnn {
namespace {

GraphSample
small_sample()
{
    Rng rng(1);
    GraphSample s;
    s.graph = make_molecule(6, rng);
    s.node_features = Matrix(6, 4, 0.5f);
    s.edge_features = Matrix(s.graph.num_edges(), 2, 0.25f);
    return s;
}

TEST(GraphSample, ConsistencyChecks)
{
    GraphSample s = small_sample();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.pool_nodes(), 6u);

    GraphSample bad_nodes = s;
    bad_nodes.node_features = Matrix(5, 4);
    EXPECT_FALSE(bad_nodes.consistent());

    GraphSample bad_edges = s;
    bad_edges.edge_features = Matrix(3, 2);
    EXPECT_FALSE(bad_edges.consistent());

    GraphSample bad_field = s;
    bad_field.dgn_field = Vec(2, 0.0f);
    EXPECT_FALSE(bad_field.consistent());

    GraphSample bad_pool = s;
    bad_pool.num_pool_nodes = 99;
    EXPECT_FALSE(bad_pool.consistent());
}

TEST(GraphSample, NoEdgeFeaturesIsConsistent)
{
    GraphSample s = small_sample();
    s.edge_features = Matrix();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.edge_dim(), 0u);
}

TEST(VirtualNodeSample, PreservesOriginalData)
{
    GraphSample s = small_sample();
    GraphSample vn = with_virtual_node(s);
    EXPECT_TRUE(vn.consistent());
    EXPECT_EQ(vn.num_nodes(), 7u);
    EXPECT_EQ(vn.pool_nodes(), 6u); // VN excluded from pooling
    EXPECT_EQ(vn.num_edges(), s.num_edges() + 12u);
    for (NodeId n = 0; n < 6; ++n)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(vn.node_features(n, c), s.node_features(n, c));
    for (std::size_t e = 0; e < s.num_edges(); ++e)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(vn.edge_features(e, c), s.edge_features(e, c));
}

TEST(VirtualNodeSample, VirtualRowsAreZero)
{
    GraphSample s = small_sample();
    GraphSample vn = with_virtual_node(s);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(vn.node_features(6, c), 0.0f);
    for (std::size_t e = s.num_edges(); e < vn.num_edges(); ++e)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(vn.edge_features(e, c), 0.0f);
}

TEST(VirtualNodeSample, ExtendsDgnField)
{
    GraphSample s = small_sample();
    s.dgn_field = Vec(6, 0.1f);
    GraphSample vn = with_virtual_node(s);
    ASSERT_EQ(vn.dgn_field.size(), 7u);
    EXPECT_EQ(vn.dgn_field[6], 0.0f);
}

TEST(VirtualNodeSample, DoubleAugmentationKeepsOriginalPool)
{
    GraphSample s = small_sample();
    GraphSample vn2 = with_virtual_node(with_virtual_node(s));
    EXPECT_EQ(vn2.num_nodes(), 8u);
    EXPECT_EQ(vn2.pool_nodes(), 6u);
}

} // namespace
} // namespace flowgnn
