/** @file CPU/GPU baseline, energy, resource, and comparator tests. */
#include <gtest/gtest.h>

#include "datasets/dataset.h"
#include "perf/accelerators.h"
#include "perf/baselines.h"
#include "perf/energy.h"
#include "perf/resources.h"

namespace flowgnn {
namespace {

GraphSample
hep()
{
    return make_sample(DatasetKind::kHep, 0);
}

TEST(CpuModel, Batch1LandsNearTableV)
{
    // Table V: CPU batch-1 HEP latencies in ms.
    struct Row {
        ModelKind kind;
        double paper_ms;
    };
    const Row rows[] = {
        {ModelKind::kGin, 4.23},  {ModelKind::kGinVn, 5.02},
        {ModelKind::kGcn, 4.59},  {ModelKind::kGat, 2.24},
        {ModelKind::kPna, 9.66},  {ModelKind::kDgn, 30.20},
    };
    GraphSample s = hep();
    for (const auto &row : rows) {
        Model m = make_model(row.kind, s.node_dim(), s.edge_dim());
        double ms = CpuModel(row.kind).latency_ms(m, m.prepare(s));
        EXPECT_NEAR(ms, row.paper_ms, row.paper_ms * 0.25)
            << model_name(row.kind);
    }
}

TEST(GpuModel, Batch1LandsNearTableV)
{
    struct Row {
        ModelKind kind;
        double paper_ms;
    };
    const Row rows[] = {
        {ModelKind::kGin, 2.38},  {ModelKind::kGinVn, 3.51},
        {ModelKind::kGcn, 3.01},  {ModelKind::kGat, 1.96},
        {ModelKind::kPna, 5.37},  {ModelKind::kDgn, 61.26},
    };
    GraphSample s = hep();
    for (const auto &row : rows) {
        Model m = make_model(row.kind, s.node_dim(), s.edge_dim());
        double ms = GpuModel(row.kind).latency_ms(m, m.prepare(s), 1);
        EXPECT_NEAR(ms, row.paper_ms, row.paper_ms * 0.30)
            << model_name(row.kind);
    }
}

TEST(GpuModel, PerGraphLatencyImprovesWithBatch)
{
    GraphSample s = hep();
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, s.node_dim(), s.edge_dim());
        GpuModel gpu(kind);
        GraphSample p = m.prepare(s);
        double prev = gpu.latency_ms(m, p, 1);
        for (std::uint32_t bs : {4u, 16u, 64u, 256u, 1024u}) {
            double cur = gpu.latency_ms(m, p, bs);
            EXPECT_LE(cur, prev) << model_name(kind) << " bs=" << bs;
            prev = cur;
        }
    }
}

TEST(GpuModel, GatAndDgnStayExpensiveAtLargeBatch)
{
    // Fig. 7's key qualitative result: attention/directional models
    // batch poorly, so the GPU never reaches the sub-0.1ms regime.
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model gat = make_model(ModelKind::kGat, s.node_dim(), s.edge_dim());
    Model gin = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    double gat_1024 =
        GpuModel(ModelKind::kGat).latency_ms(gat, gat.prepare(s), 1024);
    double gin_1024 =
        GpuModel(ModelKind::kGin).latency_ms(gin, gin.prepare(s), 1024);
    EXPECT_GT(gat_1024, 0.3);
    EXPECT_LT(gin_1024, 0.05);
}

TEST(GpuModel, ZeroBatchRejected)
{
    GraphSample s = hep();
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    EXPECT_THROW(GpuModel(ModelKind::kGin).latency_ms(m, s, 0),
                 std::invalid_argument);
}

TEST(Energy, PowerOrderingCpuGpuFpga)
{
    EXPECT_GT(platform_power_w(Platform::kGpu),
              platform_power_w(Platform::kCpu));
    EXPECT_GT(platform_power_w(Platform::kCpu),
              platform_power_w(Platform::kFpga));
}

TEST(Energy, GraphsPerKjMath)
{
    // 27 W x 0.05 ms = 1.35e-3 J/graph -> ~7.4e5 graphs/kJ.
    double ee = graphs_per_kj(Platform::kFpga, 0.05);
    EXPECT_NEAR(ee, 7.41e5, 1e4);
    EXPECT_NEAR(energy_per_graph_mj(Platform::kFpga, 0.05),
                27.0 * 0.05, 1e-9);
    EXPECT_THROW(graphs_per_kj(Platform::kCpu, 0.0),
                 std::invalid_argument);
}

TEST(Resources, AllPaperModelsFitU50)
{
    EngineConfig cfg; // paper default: 2 NT, 4 MP
    for (ModelKind kind : kPaperModels) {
        Model m = make_model(kind, 9, 3);
        ResourceUsage u = estimate_resources(m, cfg);
        EXPECT_TRUE(fits_u50(u)) << model_name(kind) << " dsp=" << u.dsp
                                 << " bram=" << u.bram;
        EXPECT_GT(u.dsp, 0u);
        EXPECT_GT(u.bram, 0u);
    }
}

TEST(Resources, OrderingMatchesTableIii)
{
    EngineConfig cfg;
    auto dsp = [&](ModelKind k) {
        Model m = make_model(k, 9, 3);
        return estimate_resources(m, cfg).dsp;
    };
    auto bram = [&](ModelKind k) {
        Model m = make_model(k, 9, 3);
        return estimate_resources(m, cfg).bram;
    };
    // Table III: PNA & GAT are DSP-heaviest, GCN lightest.
    EXPECT_GT(dsp(ModelKind::kPna), dsp(ModelKind::kGcn));
    EXPECT_GT(dsp(ModelKind::kGat), dsp(ModelKind::kGcn));
    EXPECT_GT(dsp(ModelKind::kGin), dsp(ModelKind::kGcn));
    // Table III: PNA has by far the largest BRAM (767), GCN near least.
    EXPECT_GT(bram(ModelKind::kPna), bram(ModelKind::kDgn));
    EXPECT_GT(bram(ModelKind::kDgn), bram(ModelKind::kGcn));
}

TEST(Resources, ScaleWithParallelism)
{
    Model m = make_model(ModelKind::kGin, 9, 3);
    EngineConfig small;
    small.p_node = 1;
    small.p_edge = 1;
    small.p_apply = 1;
    small.p_scatter = 1;
    EngineConfig big;
    big.p_node = 4;
    big.p_edge = 8;
    big.p_apply = 8;
    big.p_scatter = 16;
    EXPECT_LT(estimate_resources(m, small).dsp,
              estimate_resources(m, big).dsp);
}

TEST(Accelerators, PublishedTablesComplete)
{
    for (DatasetKind d :
         {DatasetKind::kCora, DatasetKind::kCiteSeer,
          DatasetKind::kPubMed, DatasetKind::kReddit}) {
        EXPECT_GT(igcn_published(d).latency_us, 0.0);
        EXPECT_GT(awbgcn_published(d).latency_us, 0.0);
        EXPECT_GT(awbgcn_published(d).latency_us,
                  igcn_published(d).latency_us)
            << "I-GCN is the stronger baseline on every dataset";
    }
    EXPECT_THROW(igcn_published(DatasetKind::kMolHiv),
                 std::invalid_argument);
}

TEST(Accelerators, DspNormalizationMatchesPaperExample)
{
    // Paper Table VIII Cora row: 6.912 us at 747 DSPs -> 1.261.
    EXPECT_NEAR(dsp_normalized_latency(6.912, 747), 1.261, 0.01);
    // And the resulting 1.03x claim vs I-GCN's 1.3.
    EXPECT_NEAR(normalized_speedup(6.912, 747, 1.3, 4096), 1.03, 0.01);
    EXPECT_THROW(dsp_normalized_latency(1.0, 0), std::invalid_argument);
}

} // namespace
} // namespace flowgnn
