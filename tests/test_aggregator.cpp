/** @file Aggregator policy tests (state layout, math, invariance). */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/aggregator.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace flowgnn {
namespace {

Vec
run_agg(const Aggregator &agg, const std::vector<Vec> &msgs,
        std::uint32_t degree, const PnaParams &params = {})
{
    std::vector<float> state(agg.state_dim());
    agg.init(state.data());
    for (const auto &m : msgs)
        agg.accumulate(state.data(), m.data());
    return agg.finalize(state.data(), degree, params);
}

TEST(Aggregator, StateDims)
{
    EXPECT_EQ(Aggregator(AggregatorKind::kSum, 5).state_dim(), 5u);
    EXPECT_EQ(Aggregator(AggregatorKind::kMean, 5).state_dim(), 6u);
    EXPECT_EQ(Aggregator(AggregatorKind::kMax, 5).state_dim(), 6u);
    EXPECT_EQ(Aggregator(AggregatorKind::kMin, 5).state_dim(), 6u);
    EXPECT_EQ(Aggregator(AggregatorKind::kPna, 5).state_dim(), 21u);
    EXPECT_EQ(Aggregator(AggregatorKind::kDgn, 6).state_dim(), 7u);
}

TEST(Aggregator, OutDims)
{
    EXPECT_EQ(Aggregator(AggregatorKind::kSum, 5).out_dim(), 5u);
    EXPECT_EQ(Aggregator(AggregatorKind::kPna, 5).out_dim(), 60u);
    EXPECT_EQ(Aggregator(AggregatorKind::kDgn, 6).out_dim(), 6u);
}

TEST(Aggregator, DgnRequiresEvenDim)
{
    EXPECT_THROW(Aggregator(AggregatorKind::kDgn, 5),
                 std::invalid_argument);
}

TEST(Aggregator, SumIsPlainSum)
{
    Aggregator agg(AggregatorKind::kSum, 3);
    Vec out = run_agg(agg, {{1, 2, 3}, {10, 20, 30}}, 2);
    EXPECT_EQ(out, (Vec{11, 22, 33}));
}

TEST(Aggregator, MeanDividesByCount)
{
    Aggregator agg(AggregatorKind::kMean, 2);
    Vec out = run_agg(agg, {{2, 4}, {4, 8}}, 2);
    EXPECT_EQ(out, (Vec{3, 6}));
}

TEST(Aggregator, MaxMinElementwise)
{
    Aggregator mx(AggregatorKind::kMax, 2);
    EXPECT_EQ(run_agg(mx, {{1, 9}, {5, 2}}, 2), (Vec{5, 9}));
    Aggregator mn(AggregatorKind::kMin, 2);
    EXPECT_EQ(run_agg(mn, {{1, 9}, {5, 2}}, 2), (Vec{1, 2}));
}

TEST(Aggregator, EmptyNeighborhoodsAreZero)
{
    for (auto kind :
         {AggregatorKind::kSum, AggregatorKind::kMean,
          AggregatorKind::kMax, AggregatorKind::kMin,
          AggregatorKind::kDgn}) {
        Aggregator agg(kind, 4);
        Vec out = run_agg(agg, {}, 0);
        for (float v : out)
            EXPECT_EQ(v, 0.0f) << aggregator_name(kind);
    }
    Aggregator pna(AggregatorKind::kPna, 4);
    Vec out = run_agg(pna, {}, 0);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(Aggregator, DgnMeansFirstHalfAbsSecondHalf)
{
    Aggregator agg(AggregatorKind::kDgn, 4);
    // Messages are [m, w*m] pairs; dir parts cancel to a negative sum.
    Vec out = run_agg(agg, {{2, 2, -3, 1}, {4, 4, 1, -5}}, 2);
    EXPECT_EQ(out[0], 3.0f); // mean of {2,4}
    EXPECT_EQ(out[1], 3.0f);
    EXPECT_EQ(out[2], 2.0f); // |-3 + 1|
    EXPECT_EQ(out[3], 4.0f); // |1 - 5|
}

TEST(Aggregator, PnaBlocksMatchManualComputation)
{
    Aggregator agg(AggregatorKind::kPna, 1);
    PnaParams params{1.0f};
    std::uint32_t degree = 3;
    Vec out = run_agg(agg, {{1}, {2}, {3}}, degree, params);
    ASSERT_EQ(out.size(), 12u);

    float mean = 2.0f;
    float var = (1.0f + 4.0f + 9.0f) / 3.0f - 4.0f;
    float stdv = std::sqrt(var + 1e-5f);
    float mx = 3.0f, mn = 1.0f;
    float logd = std::log(4.0f);
    float amp = logd / 1.0f;
    float att = 1.0f / logd;

    // Block order: [id, amp, att] x [mean, std, max, min].
    EXPECT_FLOAT_EQ(out[0], mean);
    EXPECT_NEAR(out[1], stdv, 1e-5f);
    EXPECT_FLOAT_EQ(out[2], mx);
    EXPECT_FLOAT_EQ(out[3], mn);
    EXPECT_FLOAT_EQ(out[4], amp * mean);
    EXPECT_NEAR(out[5], amp * stdv, 1e-5f);
    EXPECT_FLOAT_EQ(out[6], amp * mx);
    EXPECT_FLOAT_EQ(out[7], amp * mn);
    EXPECT_FLOAT_EQ(out[8], att * mean);
    EXPECT_NEAR(out[9], att * stdv, 1e-5f);
    EXPECT_FLOAT_EQ(out[10], att * mx);
    EXPECT_FLOAT_EQ(out[11], att * mn);
}

TEST(Aggregator, PnaZeroDegreeScalerGuard)
{
    Aggregator agg(AggregatorKind::kPna, 2);
    Vec out = run_agg(agg, {}, 0);
    for (float v : out) {
        EXPECT_FALSE(std::isnan(v));
        EXPECT_FALSE(std::isinf(v));
    }
}

/** Permutation invariance: aggregation order must not matter (beyond
 * float rounding) — the property that lets FlowGNN merge scatter and
 * gather (paper Sec. III-C). */
class AggregatorInvariance
    : public ::testing::TestWithParam<AggregatorKind>
{
};

TEST_P(AggregatorInvariance, OrderIndependentWithinTolerance)
{
    AggregatorKind kind = GetParam();
    std::size_t dim = (kind == AggregatorKind::kDgn) ? 6 : 5;
    Aggregator agg(kind, dim);
    Rng rng(11);
    std::vector<Vec> msgs;
    for (int i = 0; i < 12; ++i) {
        Vec m(dim);
        for (auto &v : m)
            v = static_cast<float>(rng.uniform(-2, 2));
        msgs.push_back(m);
    }
    Vec fwd = run_agg(agg, msgs, 12);
    std::vector<Vec> rev(msgs.rbegin(), msgs.rend());
    Vec bwd = run_agg(agg, rev, 12);
    EXPECT_LT(max_abs_diff(fwd, bwd), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AggregatorInvariance,
    ::testing::Values(AggregatorKind::kSum, AggregatorKind::kMean,
                      AggregatorKind::kMax, AggregatorKind::kMin,
                      AggregatorKind::kPna, AggregatorKind::kDgn));

} // namespace
} // namespace flowgnn
