/** @file flowgnn::serve tests: bounded queue, determinism across
 * replicas, backpressure / load shedding, telemetry, workspace reuse. */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "datasets/dataset.h"
#include "serve/bounded_queue.h"
#include "serve/service.h"

namespace flowgnn {
namespace {

using namespace std::chrono_literals;

// ---- BoundedQueue -----------------------------------------------------

TEST(BoundedQueue, OrderingAndCapacity)
{
    BoundedQueue<int> q(3);
    EXPECT_EQ(q.capacity(), 3u);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_TRUE(q.try_push(3));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushRejectsWhenFullInsteadOfGrowing)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    int spilled = 3;
    EXPECT_FALSE(q.try_push(std::move(spilled)))
        << "a full bounded queue must reject, not grow";
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_TRUE(q.try_push(std::move(spilled)));
    EXPECT_EQ(q.peak_occupancy(), 2u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1)); // fills the queue
    EXPECT_EQ(q.waiting_producers(), 0u);

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2); // must block until the consumer pops
        pushed = true;
    });

    // Deterministic: wait until the producer is provably parked inside
    // push() (no timing assumption; a broken non-blocking push would
    // flip `pushed` and fail the assert below instead).
    while (q.waiting_producers() == 0)
        std::this_thread::yield();
    EXPECT_FALSE(pushed) << "push into a full queue must block";
    EXPECT_EQ(q.size(), 1u);

    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_TRUE(pushed);
    EXPECT_EQ(q.waiting_producers(), 0u);
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsThenEndsConsumers)
{
    BoundedQueue<int> q(4);
    ASSERT_TRUE(q.try_push(7));
    q.close();
    int rejected = 8;
    EXPECT_FALSE(q.try_push(std::move(rejected)));
    auto first = q.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 7);
    EXPECT_FALSE(q.pop().has_value()) << "closed+empty ends the consumer";
}

// ---- InferenceService -------------------------------------------------

TEST(InferenceService, ConstructionFailsFastOnBadConfig)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    EngineConfig bad_engine;
    bad_engine.p_node = 0;
    EXPECT_THROW(InferenceService(m, bad_engine), std::invalid_argument);

    ServiceConfig no_replicas;
    no_replicas.replicas = 0;
    EXPECT_THROW(InferenceService(m, {}, no_replicas),
                 std::invalid_argument);

    ServiceConfig bad_opts;
    bad_opts.run_options.emulate_fixed_point = true;
    bad_opts.run_options.fixed_point = {8, 8};
    EXPECT_THROW(InferenceService(m, {}, bad_opts),
                 std::invalid_argument);
}

TEST(InferenceService, ConcurrentRepliesBitIdenticalToSequential)
{
    // The acceptance bar of the serve redesign: a multi-replica
    // service processing a 500-graph stream must reproduce a
    // sequential Engine::run loop exactly, bit for bit.
    constexpr std::size_t kGraphs = 500;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model m =
        make_model(ModelKind::kGin, probe.node_dim(), probe.edge_dim());

    Engine engine(m, {});
    RunWorkspace workspace;
    SampleStream sequential(DatasetKind::kMolHiv, kGraphs);
    std::vector<RunResult> expected;
    expected.reserve(kGraphs);
    for (std::size_t i = 0; i < kGraphs; ++i)
        expected.push_back(
            engine.run(sequential.next(), RunOptions{}, workspace));

    ServiceConfig svc;
    svc.replicas = 3;
    InferenceService service(m, {}, svc);
    SampleStream stream(DatasetKind::kMolHiv, kGraphs);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(kGraphs);
    for (std::size_t i = 0; i < kGraphs; ++i)
        futures.push_back(service.submit(stream.next()));

    for (std::size_t i = 0; i < kGraphs; ++i) {
        RunResult got = futures[i].get();
        EXPECT_EQ(got.prediction, expected[i].prediction) << i;
        EXPECT_TRUE(got.embeddings == expected[i].embeddings) << i;
        EXPECT_EQ(got.stats.total_cycles, expected[i].stats.total_cycles)
            << i;
    }

    ServiceStats st = service.stats();
    EXPECT_EQ(st.completed, kGraphs);
    EXPECT_EQ(st.failed, 0u);
}

TEST(InferenceService, FullQueueBlocksSubmitUnderBackpressure)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    ServiceConfig svc;
    svc.replicas = 1;
    svc.queue_capacity = 2;
    svc.start_paused = true; // workers parked: the queue must fill
    InferenceService service(m, {}, svc);

    std::vector<std::future<RunResult>> futures;
    futures.push_back(service.submit(s));
    futures.push_back(service.submit(s));

    std::atomic<bool> third_accepted{false};
    std::thread producer([&] {
        auto f = service.submit(s); // blocks: queue is full
        third_accepted = true;
        f.wait();
    });
    // Deterministic: workers are parked (start_paused), so the queue
    // cannot drain; wait until the producer is provably blocked in
    // submit() instead of sleeping and hoping the thread got there.
    while (service.stats().blocked_producers == 0)
        std::this_thread::yield();
    EXPECT_FALSE(third_accepted)
        << "submit into a full queue must block, not grow the queue";

    service.start();
    producer.join();
    EXPECT_TRUE(third_accepted);
    service.drain();
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(service.stats().completed, 3u);
}

TEST(InferenceService, RejectPolicyShedsLoadWhenFull)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    ServiceConfig svc;
    svc.replicas = 1;
    svc.queue_capacity = 2;
    svc.admission = AdmissionPolicy::kReject;
    svc.start_paused = true;
    InferenceService service(m, {}, svc);

    auto f1 = service.submit(s);
    auto f2 = service.submit(s);
    EXPECT_THROW(service.submit(s), ServiceOverloaded);

    service.drain();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());

    ServiceStats st = service.stats();
    EXPECT_EQ(st.rejected, 1u);
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.queue_peak_occupancy, 2u);
}

TEST(InferenceService, SubmitBatchKeepsAcceptedPrefixWhenShedding)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    ServiceConfig svc;
    svc.replicas = 1;
    svc.queue_capacity = 2;
    svc.admission = AdmissionPolicy::kReject;
    svc.start_paused = true;
    InferenceService service(m, {}, svc);

    std::vector<GraphSample> batch(5, s);
    auto futures = service.submit_batch(std::move(batch));
    EXPECT_EQ(futures.size(), 2u)
        << "batch must keep the accepted prefix, not throw it away";
    // All three shed samples count: the overflowing one and the two
    // unattempted behind it.
    EXPECT_EQ(service.stats().rejected, 3u);

    service.drain();
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(service.stats().completed, 2u);
}

TEST(InferenceService, SubmitBatchExactlyFillingQueueShedsNothing)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    ServiceConfig svc;
    svc.replicas = 1;
    svc.queue_capacity = 4;
    svc.admission = AdmissionPolicy::kReject;
    svc.start_paused = true;
    InferenceService service(m, {}, svc);

    std::vector<GraphSample> batch(4, s);
    auto futures = service.submit_batch(std::move(batch));
    EXPECT_EQ(futures.size(), 4u);
    EXPECT_EQ(service.stats().rejected, 0u);
    EXPECT_EQ(service.stats().submitted, 4u);

    service.drain();
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(InferenceService, SubmitBatchPartialShedAfterPrefillThenRecovers)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());

    ServiceConfig svc;
    svc.replicas = 1;
    svc.queue_capacity = 3;
    svc.admission = AdmissionPolicy::kReject;
    svc.start_paused = true;
    InferenceService service(m, {}, svc);

    // Two requests already occupy the queue; only one batch slot left.
    auto f1 = service.submit(s);
    auto f2 = service.submit(s);

    std::vector<GraphSample> batch(4, s);
    auto futures = service.submit_batch(std::move(batch));
    EXPECT_EQ(futures.size(), 1u)
        << "batch admission must see the pre-filled queue";
    EXPECT_EQ(service.stats().rejected, 3u);
    EXPECT_EQ(service.stats().submitted, 3u);

    // The shed tail must not poison the accepted work or the service:
    // everything accepted completes, and a later batch is admitted in
    // full once the queue drained.
    service.drain();
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    EXPECT_NO_THROW(futures.front().get());

    std::vector<GraphSample> retry(3, s);
    auto futures2 = service.submit_batch(std::move(retry));
    EXPECT_EQ(futures2.size(), 3u);
    service.drain();
    for (auto &f : futures2)
        EXPECT_NO_THROW(f.get());

    ServiceStats st = service.stats();
    EXPECT_EQ(st.completed, 6u);
    EXPECT_EQ(st.rejected, 3u) << "recovery must not re-count sheds";
    EXPECT_EQ(st.blocked_producers, 0u)
        << "kReject never parks producers";
}

TEST(InferenceService, SubmitBatchPreservesOrder)
{
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model m =
        make_model(ModelKind::kGcn, probe.node_dim(), probe.edge_dim());

    std::vector<GraphSample> batch;
    std::vector<float> expected;
    Engine engine(m, {});
    for (std::size_t i = 0; i < 16; ++i) {
        batch.push_back(make_sample(DatasetKind::kMolHiv, i));
        expected.push_back(engine.run(batch.back()).prediction);
    }

    InferenceService service(m);
    auto futures = service.submit_batch(std::move(batch));
    ASSERT_EQ(futures.size(), 16u);
    for (std::size_t i = 0; i < futures.size(); ++i)
        EXPECT_EQ(futures[i].get().prediction, expected[i]) << i;
}

TEST(InferenceService, PerRunOptionsOverrideServiceDefaults)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 3);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    InferenceService service(m);

    RunOptions traced;
    traced.capture_trace = true;
    RunResult with_trace = service.submit(s, traced).get();
    RunResult without = service.submit(s).get();
    EXPECT_FALSE(with_trace.stats.trace.empty());
    EXPECT_TRUE(without.stats.trace.empty());
    // Same answers either way.
    EXPECT_EQ(with_trace.prediction, without.prediction);
}

TEST(InferenceService, StatsTelemetryIsConsistent)
{
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model m =
        make_model(ModelKind::kGin, probe.node_dim(), probe.edge_dim());

    ServiceConfig svc;
    svc.replicas = 2;
    InferenceService service(m, {}, svc);
    SampleStream stream(DatasetKind::kMolHiv, 32);
    std::vector<std::future<RunResult>> futures;
    for (std::size_t i = 0; i < 32; ++i)
        futures.push_back(service.submit(stream.next()));
    for (auto &f : futures)
        f.get();

    ServiceStats st = service.stats();
    EXPECT_EQ(st.submitted, 32u);
    EXPECT_EQ(st.completed, 32u);
    EXPECT_GT(st.throughput_gps, 0.0);
    EXPECT_GT(st.p50_ms, 0.0);
    EXPECT_LE(st.p50_ms, st.p95_ms);
    EXPECT_LE(st.p95_ms, st.p99_ms);
    EXPECT_LE(st.queue_peak_occupancy, st.queue_capacity);
    ASSERT_EQ(st.replicas.size(), 2u);
    std::size_t replica_total = 0;
    for (const auto &rs : st.replicas)
        replica_total += rs.completed;
    EXPECT_EQ(replica_total, 32u);
}

TEST(InferenceService, SubmitAfterShutdownThrows)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    InferenceService service(m);
    service.submit(s).get();
    service.shutdown();
    EXPECT_THROW(service.submit(s), std::logic_error);
}

// ---- RunWorkspace reuse ----------------------------------------------

TEST(RunWorkspace, ReuseAcrossGraphsMatchesFreshRuns)
{
    // The replica hot path reuses one workspace for every graph; the
    // results must match fresh-workspace runs exactly for every model
    // family (GAT exercises the combine path, PNA the multi-aggregator
    // finalize, DGN the directional field).
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    for (ModelKind kind : kPaperModels) {
        Model m =
            make_model(kind, probe.node_dim(), probe.edge_dim());
        Engine engine(m, {});
        RunWorkspace reused;
        for (std::size_t i = 0; i < 6; ++i) {
            GraphSample s = make_sample(DatasetKind::kMolHiv, i);
            RunResult warm = engine.run(s, RunOptions{}, reused);
            RunResult cold = engine.run(s);
            EXPECT_EQ(warm.prediction, cold.prediction)
                << model_name(kind) << " graph " << i;
            EXPECT_TRUE(warm.embeddings == cold.embeddings)
                << model_name(kind) << " graph " << i;
            EXPECT_EQ(warm.stats.total_cycles, cold.stats.total_cycles)
                << model_name(kind) << " graph " << i;
        }
    }
}

TEST(RunStats, LatencyUsesConfiguredClock)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model m = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    EngineConfig cfg;
    cfg.clock_mhz = 150.0; // half the paper clock -> double the time
    RunResult half = Engine(m, cfg).run(s);
    RunResult full = Engine(m, {}).run(s);
    ASSERT_EQ(half.stats.total_cycles, full.stats.total_cycles);
    EXPECT_DOUBLE_EQ(half.stats.clock_mhz, 150.0);
    EXPECT_DOUBLE_EQ(half.latency_ms(), 2.0 * full.latency_ms());
    // Explicit what-if clock still available.
    EXPECT_DOUBLE_EQ(half.latency_ms(300.0), full.latency_ms());
}

} // namespace
} // namespace flowgnn
