/** @file Layer-kernel unit tests (phi / gamma semantics per model). */
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "nn/dgn_layer.h"
#include "nn/encoder_layer.h"
#include "nn/gat_layer.h"
#include "nn/gcn_layer.h"
#include "nn/gin_layer.h"
#include "nn/pna_layer.h"
#include "tensor/ops.h"

namespace flowgnn {
namespace {

GraphSample
tiny_sample(std::size_t node_dim = 4, std::size_t edge_dim = 2)
{
    Rng rng(1);
    GraphSample s;
    s.graph.num_nodes = 4;
    s.graph.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
    s.node_features = Matrix(4, node_dim, 0.3f);
    if (edge_dim > 0)
        s.edge_features = Matrix(5, edge_dim, 0.1f);
    return s;
}

TEST(LayerContext, DegreesAndDgnNorm)
{
    GraphSample s = tiny_sample();
    s.dgn_field = {0.0f, 1.0f, 3.0f, -1.0f};
    LayerContext ctx = make_layer_context(s);
    EXPECT_EQ(ctx.out_deg, (std::vector<std::uint32_t>{2, 1, 1, 1}));
    EXPECT_EQ(ctx.in_deg, (std::vector<std::uint32_t>{1, 1, 2, 1}));
    // dgn_norm[2] = |u0 - u2| + |u1 - u2| + eps = 3 + 2 + eps.
    ASSERT_EQ(ctx.dgn_norm.size(), 4u);
    EXPECT_NEAR(ctx.dgn_norm[2], 5.0f, 1e-4f);
}

TEST(EncoderLayer, IsPureLinear)
{
    Rng rng(2);
    EncoderLayer enc(4, 8, rng);
    EXPECT_EQ(enc.msg_dim(), 0u);
    GraphSample s = tiny_sample();
    LayerContext ctx = make_layer_context(s);
    Vec x{1, 2, 3, 4};
    EXPECT_EQ(enc.transform(x, {}, 0, ctx), enc.linear().forward(x));
    EXPECT_EQ(enc.nt_pass_dims(), (std::vector<std::size_t>{4}));
}

TEST(GcnLayer, MessageAppliesSymmetricNorm)
{
    Rng rng(3);
    GcnLayer gcn(4, 4, Activation::kRelu, rng);
    GraphSample s = tiny_sample();
    LayerContext ctx = make_layer_context(s);
    Vec x{1, 1, 1, 1};
    // Edge 0->1: out_deg[0]=2, in_deg[1]=1 -> 1/sqrt(3*2).
    Vec m = gcn.message(x, nullptr, 0, 0, 1, ctx);
    float expected = 1.0f / std::sqrt(6.0f);
    for (float v : m)
        EXPECT_NEAR(v, expected, 1e-6f);
}

TEST(GcnLayer, TransformAddsScaledSelfLoop)
{
    Rng rng(3);
    GcnLayer gcn(2, 2, Activation::kIdentity, rng);
    // Identity weights isolate the combine arithmetic.
    gcn.message({1, 1}, nullptr, 0, 0, 1, make_layer_context(tiny_sample()));
    GraphSample s = tiny_sample(2, 0);
    LayerContext ctx = make_layer_context(s);
    Matrix &w = const_cast<Linear &>(gcn.linear()).weight();
    w.fill(0.0f);
    w(0, 0) = 1.0f;
    w(1, 1) = 1.0f;
    const_cast<Linear &>(gcn.linear()).bias_ref() = {0.0f, 0.0f};
    // Node 0 has in_deg 1 -> self scale 1/2.
    Vec out = gcn.transform({4, 8}, {1, 1}, 0, ctx);
    EXPECT_FLOAT_EQ(out[0], 1.0f + 2.0f);
    EXPECT_FLOAT_EQ(out[1], 1.0f + 4.0f);
}

TEST(GinLayer, MessageIsReluOfSumWithEdgeEncoding)
{
    Rng rng(4);
    GinLayer gin(3, 0, Activation::kRelu, rng); // no edge features
    GraphSample s = tiny_sample(3, 0);
    LayerContext ctx = make_layer_context(s);
    Vec m = gin.message({-1.0f, 0.0f, 2.0f}, nullptr, 0, 0, 1, ctx);
    EXPECT_EQ(m, (Vec{0.0f, 0.0f, 2.0f}));
}

TEST(GinLayer, EdgeFeaturesShiftMessages)
{
    Rng rng(4);
    GinLayer gin(3, 2, Activation::kRelu, rng);
    GraphSample s = tiny_sample(3, 2);
    LayerContext ctx = make_layer_context(s);
    float ef_a[2] = {0.5f, -0.5f};
    float ef_b[2] = {-0.5f, 0.5f};
    Vec x{1.0f, 1.0f, 1.0f};
    Vec ma = gin.message(x, ef_a, 2, 0, 1, ctx);
    Vec mb = gin.message(x, ef_b, 2, 0, 1, ctx);
    EXPECT_GT(max_abs_diff(ma, mb), 0.0f)
        << "distinct edge features must yield distinct messages";
}

TEST(GinLayer, TransformUsesEpsilonWeightedSelf)
{
    Rng rng(4);
    GinLayer gin(2, 0, Activation::kIdentity, rng);
    GraphSample s = tiny_sample(2, 0);
    LayerContext ctx = make_layer_context(s);
    // (1+eps)*x + agg with eps=0.1.
    Vec a = gin.transform({1, 1}, {0, 0}, 0, ctx);
    Vec b = gin.transform({0, 0}, {1.1f, 1.1f}, 0, ctx);
    EXPECT_LT(max_abs_diff(a, b), 1e-5f);
}

TEST(PnaLayer, DimsAndAggregator)
{
    Rng rng(5);
    PnaLayer pna(8, 2, Activation::kRelu, rng);
    EXPECT_EQ(pna.msg_dim(), 8u);
    EXPECT_EQ(pna.aggregator_kind(), AggregatorKind::kPna);
    EXPECT_EQ(pna.aggregator().out_dim(), 96u);
    EXPECT_EQ(pna.nt_pass_dims(), (std::vector<std::size_t>{104}));
}

TEST(PnaLayer, TransformConsumesConcatenation)
{
    Rng rng(5);
    PnaLayer pna(4, 0, Activation::kIdentity, rng);
    GraphSample s = tiny_sample(4, 0);
    LayerContext ctx = make_layer_context(s);
    Vec agg(48, 0.1f);
    Vec out = pna.transform({1, 2, 3, 4}, agg, 0, ctx);
    EXPECT_EQ(out.size(), 4u);
}

TEST(DgnLayer, MessageCarriesMeanAndDirectionalParts)
{
    Rng rng(6);
    DgnLayer dgn(2, 0, Activation::kRelu, rng);
    GraphSample s = tiny_sample(2, 0);
    s.dgn_field = {0.0f, 2.0f, 0.0f, 0.0f};
    LayerContext ctx = make_layer_context(s);
    // Edge 0->1: w = (u0-u1)/norm[1] = -2/(2+eps) ~ -1.
    Vec m = dgn.message({3.0f, 5.0f}, nullptr, 0, 0, 1, ctx);
    ASSERT_EQ(m.size(), 4u);
    EXPECT_FLOAT_EQ(m[0], 3.0f);
    EXPECT_FLOAT_EQ(m[1], 5.0f);
    EXPECT_NEAR(m[2], -3.0f, 1e-4f);
    EXPECT_NEAR(m[3], -5.0f, 1e-4f);
}

TEST(DgnLayer, MissingFieldThrows)
{
    Rng rng(6);
    DgnLayer dgn(2, 0, Activation::kRelu, rng);
    GraphSample s = tiny_sample(2, 0);
    LayerContext ctx = make_layer_context(s);
    EXPECT_THROW(dgn.message({1, 1}, nullptr, 0, 0, 1, ctx),
                 std::invalid_argument);
}

TEST(GatLayer, DimsAndDataflow)
{
    Rng rng(7);
    GatLayer gat(8, 4, 16, Activation::kElu, rng);
    EXPECT_EQ(gat.out_dim(), 64u);
    EXPECT_EQ(gat.dataflow(), DataflowKind::kMpToNt);
    EXPECT_EQ(gat.mp_rounds(), 2u);
}

TEST(GatLayer, UniformNeighborhoodAveragesToSelf)
{
    // If all projections are identical, attention weights are uniform
    // and the combine returns act(h) itself.
    Rng rng(7);
    GatLayer gat(4, 2, 3, Activation::kIdentity, rng);
    Vec h = gat.project({0.5f, -0.5f, 1.0f, 0.0f});
    std::vector<const Vec *> nbrs{&h, &h, &h};
    Vec out = gat_combine(gat, h, nbrs);
    EXPECT_LT(max_abs_diff(out, h), 1e-5f);
}

TEST(GatLayer, AttentionIsAWeightedAverage)
{
    // Output of each head must lie inside the convex hull of the
    // inputs (attention weights sum to 1 and are positive).
    Rng rng(8);
    GatLayer gat(4, 1, 4, Activation::kIdentity, rng);
    Vec h_self = gat.project({1, 0, 0, 0});
    Vec h_a = gat.project({0, 1, 0, 0});
    Vec h_b = gat.project({0, 0, 1, 0});
    std::vector<const Vec *> nbrs{&h_a, &h_b};
    Vec out = gat_combine(gat, h_self, nbrs);
    for (std::size_t d = 0; d < 4; ++d) {
        float lo = std::min({h_self[d], h_a[d], h_b[d]});
        float hi = std::max({h_self[d], h_a[d], h_b[d]});
        EXPECT_GE(out[d], lo - 1e-5f);
        EXPECT_LE(out[d], hi + 1e-5f);
    }
}

TEST(GatLayer, EmptyNeighborhoodReturnsActivatedSelf)
{
    Rng rng(9);
    GatLayer gat(4, 2, 2, Activation::kElu, rng);
    Vec h = gat.project({1, 2, 3, 4});
    Vec out = gat_combine(gat, h, {});
    Vec expected = h;
    apply_activation(expected, Activation::kElu);
    EXPECT_LT(max_abs_diff(out, expected), 1e-6f);
}

TEST(GatLayer, ScoresUseLeakyRelu)
{
    Rng rng(10);
    GatLayer gat(2, 1, 2, Activation::kIdentity, rng);
    Vec h1 = gat.project({1, 0});
    Vec h2 = gat.project({0, 1});
    Vec s = gat.edge_scores(h1, h2);
    Vec expected_linear = gat.src_scores(h1);
    Vec d = gat.dst_scores(h2);
    float raw = expected_linear[0] + d[0];
    EXPECT_FLOAT_EQ(s[0], activate(raw, Activation::kLeakyRelu));
}

TEST(Layer, BaseMessageThrowsForMessagelessLayers)
{
    Rng rng(11);
    EncoderLayer enc(2, 2, rng);
    GraphSample s = tiny_sample(2, 0);
    LayerContext ctx = make_layer_context(s);
    EXPECT_THROW(enc.message({1, 1}, nullptr, 0, 0, 1, ctx),
                 std::logic_error);
}

} // namespace
} // namespace flowgnn
