/**
 * @file
 * Corpus-replay driver for builds without libFuzzer (GCC, or clang
 * without -fsanitize=fuzzer): feeds every file named on the command
 * line — directories are walked recursively — through the harness's
 * LLVMFuzzerTestOneInput, so the checked-in corpus doubles as a
 * deterministic regression suite on any compiler. Exit 0 when every
 * input was processed (the harness crashing/aborting is the failure
 * mode, exactly as under libFuzzer).
 */
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "fuzz/fuzz_common.h"

namespace fs = std::filesystem;

namespace {

std::size_t
replay_file(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        bytes.size());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-dir> ...\n", argv[0]);
        return 2;
    }
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        fs::path p(argv[i]);
        if (fs::is_directory(p)) {
            for (const auto &e : fs::recursive_directory_iterator(p))
                if (e.is_regular_file())
                    replayed += replay_file(e.path());
        } else if (fs::is_regular_file(p)) {
            replayed += replay_file(p);
        } else {
            std::fprintf(stderr, "no such input: %s\n", argv[i]);
            return 2;
        }
    }
    std::printf("replayed %zu corpus input(s), no crashes\n", replayed);
    return 0;
}
