/**
 * @file
 * Fuzz harness for the FGNB binary loader — the highest-stakes
 * hostile-input surface in the tree: a serving deployment reloads
 * cached graph files written by earlier runs, so a corrupted or
 * attacker-shaped file must always produce a clean GraphFileError,
 * never memory unsafety. Drives the full GraphFile::load path
 * (header validation via fgnb_validate_header, section sizing,
 * checksum verification, payload reads) and, when the header
 * survives, the same bytes through the mmap-backed GraphView.
 */
#include "fuzz/fuzz_common.h"

#include "io/graph_file.h"
#include "io/graph_view.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // Cap inputs: a hostile header can request huge-but-legal
    // payloads; the validator rejects size mismatches cheaply, and
    // anything the validator accepts is bounded by the actual file
    // size. 1 MiB keeps per-exec cost flat.
    if (size > (1u << 20))
        return 0;

    flowgnn_fuzz::MemFile file(data, size);
    try {
        flowgnn::GraphSample s =
            flowgnn::GraphFile::load(file.path(), /*threads=*/1);
        (void)s;
    } catch (const flowgnn::GraphFileError &) {
        // Expected: malformed input, rejected with a message.
    }
    try {
        flowgnn::io::GraphView view(file.path());
        (void)view.num_nodes();
    } catch (const flowgnn::GraphFileError &) {
    }
    return 0;
}
