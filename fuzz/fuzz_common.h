/**
 * @file
 * Shared plumbing for the flowgnn fuzz harnesses (flowgnn::check
 * satellite): the loaders under test take file *paths*, so each input
 * byte-buffer is materialized as an anonymous in-memory file
 * (memfd_create) addressed via /proc/self/fd — no disk I/O, no
 * tmpfile cleanup, and ASan sees every byte of the mapping.
 *
 * Two build shapes share every harness:
 *  - clang -fsanitize=fuzzer,address: libFuzzer drives
 *    LLVMFuzzerTestOneInput (the CI smoke run).
 *  - any compiler, FLOWGNN_FUZZERS=ON without libFuzzer: each harness
 *    links fuzz/standalone_main.cpp, which replays the checked-in
 *    corpus files through the same entry point — so the corpus is a
 *    regression suite even where libFuzzer does not exist (GCC
 *    containers, the tier-1 box).
 */
#ifndef FLOWGNN_FUZZ_FUZZ_COMMON_H
#define FLOWGNN_FUZZ_FUZZ_COMMON_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

namespace flowgnn_fuzz {

/** Anonymous in-memory file holding one fuzz input; the path is valid
 * for this process while the object lives. */
class MemFile
{
  public:
    MemFile(const std::uint8_t *data, std::size_t size)
    {
        fd_ = ::memfd_create("flowgnn-fuzz", 0);
        if (fd_ < 0)
            throw std::runtime_error("memfd_create failed");
        std::size_t off = 0;
        while (off < size) {
            ssize_t n = ::write(fd_, data + off, size - off);
            if (n <= 0) {
                ::close(fd_);
                throw std::runtime_error("memfd write failed");
            }
            off += static_cast<std::size_t>(n);
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "/proc/self/fd/%d", fd_);
        path_ = buf;
    }

    ~MemFile()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    MemFile(const MemFile &) = delete;
    MemFile &operator=(const MemFile &) = delete;

    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace flowgnn_fuzz

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

#endif // FLOWGNN_FUZZ_FUZZ_COMMON_H
