/**
 * @file
 * Fuzz harness for the SNAP/CSV edge-list parser — the surface that
 * eats raw downloaded text. Exercises both tokenizer dialects
 * (whitespace-separated SNAP with '#' comments, and comma-separated
 * CSV rows) plus the bounded carry buffer for lines spanning read
 * chunks; any input must either parse or throw GraphFileError.
 *
 * The first input byte selects the num_nodes mode (derive vs pinned
 * small bound) so the fuzzer explores both the "derive max id" and
 * the "endpoint >= num_nodes is an error" paths.
 */
#include "fuzz/fuzz_common.h"

#include "io/edge_list.h"
#include "io/graph_file.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size == 0 || size > (1u << 20))
        return 0;

    flowgnn::EdgeListOptions options;
    options.num_nodes = (data[0] & 1) ? 0 : 1 + (data[0] >> 1);

    flowgnn_fuzz::MemFile file(data + 1, size - 1);
    try {
        flowgnn::CooGraph g =
            flowgnn::parse_snap_edge_list(file.path(), options);
        (void)g;
    } catch (const flowgnn::GraphFileError &) {
        // Expected: malformed input, rejected with a message.
    }
    return 0;
}
