/**
 * @file
 * Sharded execution walkthrough: one service, two graph scales.
 *
 * A ShardedService routes small graphs (a molecule from the MolHIV
 * generator) through the multi-replica fast path and a 100k-node
 * point-cloud-like lattice through multi-die sharded execution —
 * the workload the paper defers to future work (Sec. VI-E). The
 * example also runs the ShardedEngine directly to show the per-die
 * breakdown and verifies sharded == unsharded embeddings.
 *
 *   ./large_graph_shard [--graph-file PATH] [--shards P]
 *                       [--strategy NAME]
 *
 * With --graph-file the synthetic walkthrough is replaced by the
 * disk-backed one: the graph is loaded via flowgnn::io (FGNB binary /
 * SNAP text / OGB CSV), sharded across P dies (default 8, default
 * strategy fennel — the right family for power-law graphs like the
 * full-scale Reddit-class file from flowgnn_make_reddit), and the
 * merged embeddings are verified BIT-IDENTICAL against a single-die
 * in-memory run of the same loaded graph (exit 1 on any mismatch).
 * Single NT unit per die, which is the bit-exactness condition (see
 * src/shard/sharded_engine.h).
 */
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>

#include "datasets/dataset.h"
#include "graph/generators.h"
#include "io/load.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

using namespace flowgnn;

namespace {

/** The disk-backed walkthrough: sharded-from-file vs in-memory. */
int
run_from_file(const std::string &path, std::uint32_t shards,
              ShardStrategy strategy)
{
    constexpr std::size_t kNodeDim = 16;
    LoadOptions load;
    load.node_dim = kNodeDim;
    std::printf("loading %s...\n", path.c_str());
    GraphSample sample;
    try {
        sample = load_graph_sample(path, load);
    } catch (const GraphFileError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::printf("loaded: %u nodes / %zu edges, node_dim %zu\n",
                sample.num_nodes(), sample.num_edges(),
                sample.node_dim());

    Model model = make_model(ModelKind::kGcn16, sample.node_dim(), 0);
    EngineConfig engine_cfg;
    engine_cfg.p_node = 1; // single NT unit: bit-exact sharding
    ShardConfig shard_cfg;
    shard_cfg.num_shards = shards;
    shard_cfg.strategy = strategy;

    std::printf("sharded run: P=%u, %s, %u-hop halo...\n", shards,
                shard_strategy_name(strategy),
                ShardedEngine::message_hops(model));
    ShardedEngine sharded(model, engine_cfg, shard_cfg);
    ShardedRunResult r = sharded.run(sample);
    for (const ShardInfo &info : r.shards)
        std::printf("  die %u: %7zu owned + %7zu halo nodes, "
                    "%9zu edges, %10llu compute + %8llu comm cycles\n",
                    info.shard, info.owned_nodes, info.halo_nodes,
                    info.subgraph_edges,
                    static_cast<unsigned long long>(
                        info.stats.total_cycles),
                    static_cast<unsigned long long>(info.comm_cycles));
    std::printf("cut %.4f, replication %.3f, merged %llu cycles\n",
                sample.num_edges() == 0
                    ? 0.0
                    : static_cast<double>(r.cut_edges) /
                          static_cast<double>(sample.num_edges()),
                r.replication_factor,
                static_cast<unsigned long long>(r.stats.total_cycles));

    std::printf("in-memory single-die run for comparison...\n");
    Engine single(model, engine_cfg);
    RunResult reference = single.run(sample);

    float diff = max_abs_diff(r.embeddings, reference.embeddings);
    std::printf("sharded-from-disk vs in-memory: max |diff| = %g "
                "(prediction %g vs %g), speedup %.2fx\n",
                diff, r.prediction, reference.prediction,
                static_cast<double>(reference.stats.total_cycles) /
                    static_cast<double>(r.stats.total_cycles));
    if (diff != 0.0f || r.prediction != reference.prediction) {
        std::fprintf(stderr,
                     "FAIL: sharded run is not bit-identical\n");
        return 1;
    }
    std::printf("OK: bit-identical\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string graph_file;
    std::uint32_t file_shards = 8;
    ShardStrategy file_strategy = ShardStrategy::kFennel;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--graph-file") && a + 1 < argc)
            graph_file = argv[++a];
        else if (!std::strcmp(argv[a], "--shards") && a + 1 < argc)
            file_shards = static_cast<std::uint32_t>(
                std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--strategy") && a + 1 < argc) {
            try {
                file_strategy = shard_strategy_from_name(argv[++a]);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 1;
            }
        }
    }
    if (file_shards == 0) { // also what atoll turns a typo into
        std::fprintf(stderr, "error: --shards must be >= 1\n");
        return 1;
    }
    if (!graph_file.empty())
        return run_from_file(graph_file, file_shards, file_strategy);
    constexpr NodeId kLargeNodes = 100000;
    constexpr std::size_t kNodeDim = 16;

    // One model serves both scales (GCN-16: the Table VIII config).
    Model model = make_model(ModelKind::kGcn16, kNodeDim, 0);

    GraphSample large;
    large.graph = make_ring_lattice(kLargeNodes, 2);
    Rng rng(7);
    large.node_features = Matrix(kLargeNodes, kNodeDim);
    for (std::size_t r = 0; r < kLargeNodes; ++r)
        for (std::size_t c = 0; c < kNodeDim; ++c)
            large.node_features(r, c) =
                static_cast<float>(rng.normal(0.0, 0.5));

    GraphSample small;
    small.graph = make_molecule(24, rng);
    small.node_features = Matrix(24, kNodeDim);
    for (std::size_t r = 0; r < 24; ++r)
        for (std::size_t c = 0; c < kNodeDim; ++c)
            small.node_features(r, c) =
                static_cast<float>(rng.normal(0.0, 0.5));

    // ---- One service, one die pool, size-based routing ----
    ShardedServiceConfig cfg;
    cfg.shard_threshold_nodes = 4096;
    cfg.shard.num_shards = 4;
    cfg.shard.strategy = ShardStrategy::kContiguous;
    cfg.pool.num_dies = 4;
    cfg.pool.policy = PoolPolicy::kSpaceShare;
    ShardedService service(model, {}, cfg);

    auto small_future = service.submit(small);
    auto large_future = service.submit(large);
    RunResult small_result = small_future.get();
    RunResult large_result = large_future.get();

    PoolStats st = service.stats();
    std::printf("routing: %zu graph(s) on the fast path, %zu sharded "
                "(peak %zu/%zu dies busy)\n",
                st.fast.completed, st.sharded.completed,
                st.peak_busy_dies, service.num_dies());
    std::printf("small graph:  %5u nodes -> %8llu cycles (%.3f ms)\n",
                small.num_nodes(),
                static_cast<unsigned long long>(
                    small_result.stats.total_cycles),
                small_result.latency_ms());
    std::printf("large graph: %5u nodes -> %8llu cycles (%.3f ms), "
                "%llu comm cycles\n\n",
                large.num_nodes(),
                static_cast<unsigned long long>(
                    large_result.stats.total_cycles),
                large_result.latency_ms(),
                static_cast<unsigned long long>(
                    large_result.stats.comm_cycles));

    // ---- Per-die breakdown + equivalence check ----
    ShardedEngine sharded(model, {}, cfg.shard);
    ShardedRunResult r = sharded.run(large);
    std::printf("per-die breakdown (%s, %u-hop halo, cut %.3f, "
                "replication %.3f):\n",
                shard_strategy_name(cfg.shard.strategy),
                ShardedEngine::message_hops(model),
                static_cast<double>(r.cut_edges) /
                    static_cast<double>(large.num_edges()),
                r.replication_factor);
    for (const ShardInfo &info : r.shards)
        std::printf("  die %u: %6zu owned + %3zu halo nodes, "
                    "%7zu edges, %8llu compute + %5llu comm cycles\n",
                    info.shard, info.owned_nodes, info.halo_nodes,
                    info.subgraph_edges,
                    static_cast<unsigned long long>(
                        info.stats.total_cycles),
                    static_cast<unsigned long long>(info.comm_cycles));

    Engine single(model, {});
    RunResult reference = single.run(large);
    std::printf("\nsharded vs single engine: max |diff| = %g, "
                "speedup %.2fx\n",
                max_abs_diff(r.embeddings, reference.embeddings),
                static_cast<double>(reference.stats.total_cycles) /
                    static_cast<double>(r.stats.total_cycles));

    // ---- Picking a strategy for a power-law graph ----
    // The lattice above has locality-carrying ids, so kContiguous is
    // free and right. A citation/social graph is the opposite regime:
    // BFS ranks order poorly (a few hops reach everything) and the
    // streaming partitioners earn their keep. The cut metrics are
    // cheap — measure before committing to a strategy; no call site
    // other than the ShardConfig changes.
    Rng prng(0x50C1A1);
    CooGraph powerlaw = make_barabasi_albert(30000, 4, prng);
    std::printf("\npower-law graph (%u nodes): cut fraction at P=4\n",
                powerlaw.num_nodes);
    ShardStrategy pick = ShardStrategy::kContiguous;
    double best_cut = 1.0;
    for (ShardStrategy s :
         {ShardStrategy::kContiguous, ShardStrategy::kBfsContiguous,
          ShardStrategy::kLdg, ShardStrategy::kFennel,
          ShardStrategy::kHdrf}) {
        double cut = shard_cut_fraction(
            powerlaw, shard_assignment(powerlaw, 4, s));
        std::printf("  %-16s %.3f\n", shard_strategy_name(s), cut);
        if (cut < best_cut) {
            best_cut = cut;
            pick = s;
        }
    }
    std::printf("picked %s; every shard consumer (ShardedEngine, "
                "ShardedService, pool jobs) takes it via ShardConfig\n",
                shard_strategy_name(pick));
    return 0;
}
