/**
 * @file
 * Molecular property screening (paper's MolHIV workload).
 *
 * Screens a batch of candidate molecules for a binary property with
 * GIN+VN — the paper's strongest molecular model — and demonstrates
 * the virtual-node machinery: the VN is added on the fly per graph,
 * its giant fan-out is absorbed by the dataflow pipeline (paper
 * Fig. 6), and it is excluded from the readout pooling. Also compares
 * throughput with and without the virtual node.
 */
#include <cstdio>

#include "core/engine.h"
#include "datasets/dataset.h"

using namespace flowgnn;

int
main()
{
    constexpr std::size_t kMolecules = 200;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);

    Model gin_vn = make_model(ModelKind::kGinVn, probe.node_dim(),
                              probe.edge_dim());
    Model gin = make_model(ModelKind::kGin, probe.node_dim(),
                           probe.edge_dim());
    Engine screen(gin_vn, EngineConfig{});
    Engine plain(gin, EngineConfig{});

    std::printf("Screening %zu molecules with GIN+VN (5 layers, "
                "dim 100, virtual node)...\n\n",
                kMolecules);

    std::size_t hits = 0;
    double vn_cycles = 0.0, plain_cycles = 0.0;
    float best_score = -1e30f;
    std::size_t best_index = 0;

    SampleStream stream(DatasetKind::kMolHiv, kMolecules);
    for (std::size_t i = 0; i < kMolecules; ++i) {
        GraphSample mol = stream.next();
        RunResult r = screen.run(mol);
        vn_cycles += static_cast<double>(r.stats.total_cycles);
        plain_cycles += static_cast<double>(
            plain.run(mol).stats.total_cycles);
        if (r.prediction > 0.0f)
            ++hits;
        if (r.prediction > best_score) {
            best_score = r.prediction;
            best_index = i;
        }
    }

    std::printf("Screening hits (score > 0): %zu/%zu\n", hits,
                kMolecules);
    std::printf("Top candidate: molecule #%zu (score %.4f)\n",
                best_index, best_score);

    vn_cycles /= kMolecules;
    plain_cycles /= kMolecules;
    std::printf("\nVirtual-node cost check (paper Fig. 6):\n");
    std::printf("  GIN     avg cycles/molecule: %.0f (%.4f ms)\n",
                plain_cycles, plain_cycles / 3e5);
    std::printf("  GIN+VN  avg cycles/molecule: %.0f (%.4f ms)\n",
                vn_cycles, vn_cycles / 3e5);
    std::printf("  overhead: %.1f%% — the dataflow pipeline overlaps "
                "the virtual node's full fan-out\n",
                100.0 * (vn_cycles / plain_cycles - 1.0));
    return 0;
}
