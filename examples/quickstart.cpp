/**
 * @file
 * Quickstart: run one graph through a FlowGNN accelerator in ~30 lines.
 *
 * Builds a small molecular graph, compiles a GIN accelerator with the
 * paper's default configuration (2 NT / 4 MP units), streams the graph
 * in raw COO form with zero pre-processing, and prints the prediction,
 * latency, and unit utilization — then cross-checks the result against
 * the software reference executor.
 */
#include <cstdio>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "tensor/ops.h"

using namespace flowgnn;

int
main()
{
    // A molecule-like graph with node and edge (bond) features,
    // exactly what would stream in from a detector or data loader.
    GraphSample sample = make_sample(DatasetKind::kMolHiv, 0);
    std::printf("Input graph: %u nodes, %zu edges, %zu node features, "
                "%zu edge features\n",
                sample.num_nodes(), sample.num_edges(),
                sample.node_dim(), sample.edge_dim());

    // Compile a GIN accelerator (5 layers, dim 100, edge embeddings).
    Model model =
        make_model(ModelKind::kGin, sample.node_dim(), sample.edge_dim());
    Engine engine(model, EngineConfig{}); // paper defaults

    // Stream the graph through the dataflow engine.
    RunResult result = engine.run(sample);
    std::printf("\nPrediction: %.6f\n", result.prediction);
    std::printf("Latency:    %llu cycles = %.4f ms @ 300 MHz\n",
                static_cast<unsigned long long>(result.stats.total_cycles),
                result.latency_ms());
    for (std::size_t u = 0; u < result.stats.nt_units.size(); ++u)
        std::printf("NT unit %zu utilization: %.1f%%\n", u,
                    100.0 * result.stats.nt_units[u].utilization());
    for (std::size_t m = 0; m < result.stats.mp_units.size(); ++m)
        std::printf("MP unit %zu utilization: %.1f%% (%llu edge-granules)\n",
                    m, 100.0 * result.stats.mp_units[m].utilization(),
                    static_cast<unsigned long long>(
                        result.stats.mp_edge_work[m]));

    // Functional guarantee: the engine matches the software reference.
    float reference = model.predict(sample);
    std::printf("\nReference prediction: %.6f (|diff| = %.2e)\n",
                reference, std::abs(reference - result.prediction));
    return std::abs(reference - result.prediction) < 1e-3f ? 0 : 1;
}
