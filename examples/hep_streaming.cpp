/**
 * @file
 * Real-time high-energy-physics trigger scenario (paper Sec. I).
 *
 * Collision events arrive as kNN particle-cloud graphs that must be
 * classified one at a time (batch size 1) under a hard latency budget
 * — overrunning the budget overflows the detector buffers and loses
 * data. This example streams 500 HEP events through a two-replica
 * GIN inference service, tracks the latency distribution, and reports
 * how many events met a 0.2 ms trigger deadline.
 */
#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "datasets/dataset.h"
#include "serve/service.h"

using namespace flowgnn;

int
main()
{
    constexpr double kDeadlineMs = 0.2;
    constexpr std::size_t kEvents = 500;

    GraphSample probe = make_sample(DatasetKind::kHep, 0);
    Model model =
        make_model(ModelKind::kGin, probe.node_dim(), probe.edge_dim());
    InferenceService service(model);

    std::printf("Streaming %zu HEP events (kNN graphs, k=16) through "
                "GIN at batch size 1 (%zu replicas)...\n",
                kEvents, service.replica_count());

    SampleStream stream(DatasetKind::kHep, kEvents);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(kEvents);
    for (std::size_t i = 0; i < kEvents; ++i)
        futures.push_back(service.submit(stream.next()));

    std::vector<double> latencies;
    latencies.reserve(kEvents);
    std::size_t accepted = 0, met_deadline = 0;
    for (auto &future : futures) {
        RunResult r = future.get();
        double ms = r.latency_ms();
        latencies.push_back(ms);
        if (ms <= kDeadlineMs)
            ++met_deadline;
        if (r.prediction > 0.0f)
            ++accepted; // trigger decision: keep this event
    }

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        return latencies[static_cast<std::size_t>(
            p * (latencies.size() - 1))];
    };
    double mean = 0.0;
    for (double v : latencies)
        mean += v;
    mean /= latencies.size();

    std::printf("\nLatency per event (ms): mean %.4f | p50 %.4f | "
                "p99 %.4f | max %.4f\n",
                mean, pct(0.50), pct(0.99), latencies.back());
    std::printf("Events meeting the %.1f ms trigger deadline: %zu/%zu "
                "(%.1f%%)\n",
                kDeadlineMs, met_deadline, kEvents,
                100.0 * met_deadline / kEvents);
    std::printf("Events accepted by the trigger: %zu/%zu\n", accepted,
                kEvents);
    std::printf("\nNo graph pre-processing was performed: every event "
                "was consumed in raw COO edge-list order.\n");
    return met_deadline == kEvents ? 0 : 1;
}
