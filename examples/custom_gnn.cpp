/**
 * @file
 * The FlowGNN programming model (paper Sec. V / Listing 1): building
 * an accelerator for a brand-new GNN by writing only the layer kernel.
 *
 * "Alice" reads a paper proposing NewGNN — max-aggregation over
 * edge-conditioned messages with a gated update — which no accelerator
 * supports. She subclasses Layer, filling in exactly the pieces that
 * Listing 1 highlights (the message function phi, the aggregator
 * choice, and the node transformation gamma); the message-passing
 * skeleton, multi-queue dataflow, multicast adapter, and parallelism
 * machinery all come from the framework unchanged.
 */
#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "datasets/dataset.h"
#include "nn/encoder_layer.h"
#include "tensor/ops.h"

using namespace flowgnn;

namespace {

/**
 * NewGNN layer: x_i' = sigmoid(gate) * x_i + (1 - sigmoid(gate)) * W m_i
 * with m_i = max_j ReLU(x_j + EdgeEnc(e_ji)) — only the highlighted
 * lines of Listing 1.
 */
class NewGnnLayer : public Layer
{
  public:
    NewGnnLayer(std::size_t dim, std::size_t edge_dim, Rng &rng)
        : dim_(dim), edge_dim_(edge_dim), mix_(dim, dim),
          gate_(2 * dim, dim)
    {
        if (edge_dim_ > 0) {
            edge_enc_ = Linear(edge_dim_, dim);
            edge_enc_.init_glorot(rng);
        }
        mix_.init_glorot(rng);
        gate_.init_glorot(rng);
    }

    const char *name() const override { return "new-gnn"; }
    std::size_t in_dim() const override { return dim_; }
    std::size_t out_dim() const override { return dim_; }
    std::size_t msg_dim() const override { return dim_; }

    // Line 9 of Listing 1: pick the aggregator.
    AggregatorKind aggregator_kind() const override
    {
        return AggregatorKind::kMax;
    }
    bool uses_edge_features() const override { return edge_dim_ > 0; }

    // Line 14-17: the per-edge message function.
    Vec
    message(const Vec &x_src, const float *edge_feat,
            std::size_t edge_dim, NodeId, NodeId,
            const LayerContext &) const override
    {
        Vec msg = x_src;
        if (edge_dim_ > 0 && edge_feat != nullptr &&
            edge_dim == edge_dim_) {
            Vec e(edge_feat, edge_feat + edge_dim);
            add_inplace(msg, edge_enc_.forward(e));
        }
        apply_activation(msg, Activation::kRelu);
        return msg;
    }

    // Line 10-13: the node transformation.
    Vec
    transform(const Vec &x_self, const Vec &agg, NodeId,
              const LayerContext &) const override
    {
        Vec mixed = mix_.forward(agg);
        Vec gate_in = concat({x_self, agg});
        Vec gate = gate_.forward(gate_in);
        apply_activation(gate, Activation::kSigmoid);
        Vec out(dim_);
        for (std::size_t i = 0; i < dim_; ++i)
            out[i] = gate[i] * x_self[i] + (1.0f - gate[i]) * mixed[i];
        return out;
    }

    std::vector<std::size_t> nt_pass_dims() const override
    {
        return {dim_, 2 * dim_}; // mix pass + gate pass
    }
    std::size_t transform_macs() const override
    {
        return mix_.macs() + gate_.macs();
    }
    std::size_t message_macs() const override
    {
        return edge_dim_ > 0 ? edge_dim_ * dim_ : 0;
    }

  private:
    std::size_t dim_;
    std::size_t edge_dim_;
    Linear edge_enc_;
    Linear mix_;  ///< W over the aggregated message
    Linear gate_; ///< gating from [x || m]
};

} // namespace

int
main()
{
    GraphSample sample = make_sample(DatasetKind::kMolHiv, 11);
    const std::size_t dim = 64;

    // Assemble NewGNN: encoder + 3 custom layers + regression head.
    Rng rng(2024);
    std::vector<std::unique_ptr<Layer>> stages;
    stages.push_back(std::make_unique<EncoderLayer>(sample.node_dim(),
                                                    dim, rng));
    for (int l = 0; l < 3; ++l)
        stages.push_back(std::make_unique<NewGnnLayer>(
            dim, sample.edge_dim(), rng));
    Mlp head({dim, 32, 1}, Activation::kRelu);
    head.init_glorot(rng);
    Model new_gnn("NewGNN", std::move(stages), std::move(head));

    // Deploy on the unchanged FlowGNN skeleton and sweep parallelism.
    std::printf("NewGNN (max-aggregation, gated update) on FlowGNN:\n\n");
    std::printf("%-24s | %10s | %10s\n", "Config", "cycles", "ms");
    for (auto [pn, pe, pa, ps] :
         {std::tuple{1u, 1u, 1u, 1u}, {2u, 4u, 2u, 2u},
          {2u, 4u, 4u, 8u}, {4u, 8u, 8u, 8u}}) {
        EngineConfig cfg;
        cfg.p_node = pn;
        cfg.p_edge = pe;
        cfg.p_apply = pa;
        cfg.p_scatter = ps;
        Engine engine(new_gnn, cfg);
        RunResult r = engine.run(sample);
        std::printf("%-24s | %10llu | %10.4f\n", cfg.label().c_str(),
                    static_cast<unsigned long long>(
                        r.stats.total_cycles),
                    r.latency_ms());
    }

    // The framework's functional guarantee applies to custom layers
    // too: cross-check against the reference executor.
    Engine engine(new_gnn, EngineConfig{});
    RunResult r = engine.run(sample);
    float ref = new_gnn.predict(sample);
    std::printf("\nEngine %.6f vs reference %.6f (|diff| = %.2e)\n",
                r.prediction, ref, std::abs(r.prediction - ref));
    return std::abs(r.prediction - ref) < 1e-3f ? 0 : 1;
}
