/**
 * @file
 * flowgnn_cli — command-line driver for the accelerator simulator.
 *
 * Spins up a flowgnn::serve InferenceService (N engine replicas
 * behind a bounded queue), streams graphs through it, and prints
 * latency, utilization, and service telemetry; with --dse it instead
 * searches for the fastest configuration that fits the Alveo U50;
 * with --graph-file it runs one sharded-from-disk graph through a
 * PoolScheduler ghost-exchange job.
 *
 * Observability: --trace FILE captures the whole run as a Chrome
 * trace (open in Perfetto: every subsystem is a process row, with
 * the engine's cycle-domain unit trace merged onto the same wall
 * timeline); --metrics FILE dumps the shared metrics registry, as
 * Prometheus text when FILE ends in .prom, JSON otherwise.
 *
 * Examples:
 *   flowgnn_cli --model gin --dataset molhiv --graphs 100
 *   flowgnn_cli --model gat --dataset hep --pnode 4 --pedge 8
 *   flowgnn_cli --model gcn --dataset molhiv --replicas 4
 *   flowgnn_cli --model pna --dataset molhiv --dse
 *   flowgnn_cli --model gcn16 --graph-file g.fgnb --shards 4 \
 *       --trace run.json --metrics run.prom
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <fstream>
#include <future>
#include <vector>

#include "serve/stream.h"
#include "core/trace.h"
#include "io/load.h"
#include "obs/stage_profile.h"
#include "obs/trace_session.h"
#include "perf/dse.h"
#include "pool/scheduler.h"
#include "serve/service.h"

using namespace flowgnn;

namespace {

struct CliOptions {
    ModelKind model = ModelKind::kGin;
    DatasetKind dataset = DatasetKind::kMolHiv;
    std::size_t graphs = 32;
    EngineConfig config;
    ServiceConfig service;
    bool run_dse = false;
    bool balanced_banks = false;
    std::string trace_path;
    std::string metrics_path;
    std::string graph_file;
    std::uint32_t shards = 4;
};

/** Dumps the shared registry: Prometheus text for .prom, else JSON. */
void
write_metrics(const std::string &path)
{
    obs::MetricsSnapshot snap = obs::MetricsRegistry::global()->snapshot();
    std::ofstream os(path);
    if (path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".prom") == 0)
        snap.write_prometheus(os);
    else
        snap.write_json(os);
    std::printf("metrics written to %s\n", path.c_str());
}

void
write_trace(const obs::TraceSession &session, const std::string &path)
{
    std::ofstream os(path);
    session.write_chrome_trace(os);
    std::printf("Chrome trace written to %s (%zu records, %zu "
                "dropped) — open in ui.perfetto.dev\n",
                path.c_str(), session.recorded(), session.dropped());
}

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --model <gcn|gin|gin-vn|gat|pna|dgn|sage|sgc|gcn16>\n"
        "  --dataset <molhiv|molpcba|hep|cora|citeseer|pubmed|reddit>\n"
        "  --graphs N          graphs to stream (default 32)\n"
        "  --pnode/--pedge/--papply/--pscatter N\n"
        "  --mode <flowgnn|baseline|fixed|nonpipelined>\n"
        "  --queue-depth N     adapter FIFO depth (default 8)\n"
        "  --replicas N        service engine replicas (default 2)\n"
        "  --queue-capacity N  service submission queue (default 64)\n"
        "  --balanced-banks    greedy-balanced MP banking ablation\n"
        "  --trace FILE        capture the whole run as a Chrome trace\n"
        "                      (all subsystems + engine cycle rows)\n"
        "  --metrics FILE      dump the metrics registry (.prom ->\n"
        "                      Prometheus text, else JSON)\n"
        "  --graph-file PATH   run one on-disk graph sharded from disk\n"
        "                      (pool + ghost exchange) instead of a\n"
        "                      synthetic dataset stream\n"
        "  --shards N          dies for --graph-file (default 4)\n"
        "  --dse               search the best U50-fitting config\n",
        argv0);
    std::exit(2);
}

ModelKind
parse_model(const std::string &s, const char *argv0)
{
    if (s == "gcn") return ModelKind::kGcn;
    if (s == "gin") return ModelKind::kGin;
    if (s == "gin-vn") return ModelKind::kGinVn;
    if (s == "gat") return ModelKind::kGat;
    if (s == "pna") return ModelKind::kPna;
    if (s == "dgn") return ModelKind::kDgn;
    if (s == "sage") return ModelKind::kSage;
    if (s == "sgc") return ModelKind::kSgc;
    if (s == "gcn16") return ModelKind::kGcn16;
    std::printf("unknown model '%s'\n", s.c_str());
    usage(argv0);
}

DatasetKind
parse_dataset(const std::string &s, const char *argv0)
{
    if (s == "molhiv") return DatasetKind::kMolHiv;
    if (s == "molpcba") return DatasetKind::kMolPcba;
    if (s == "hep") return DatasetKind::kHep;
    if (s == "cora") return DatasetKind::kCora;
    if (s == "citeseer") return DatasetKind::kCiteSeer;
    if (s == "pubmed") return DatasetKind::kPubMed;
    if (s == "reddit") return DatasetKind::kReddit;
    std::printf("unknown dataset '%s'\n", s.c_str());
    usage(argv0);
}

PipelineMode
parse_mode(const std::string &s, const char *argv0)
{
    if (s == "flowgnn") return PipelineMode::kFlowGnn;
    if (s == "baseline") return PipelineMode::kBaselineDataflow;
    if (s == "fixed") return PipelineMode::kFixedPipeline;
    if (s == "nonpipelined") return PipelineMode::kNonPipelined;
    std::printf("unknown mode '%s'\n", s.c_str());
    usage(argv0);
}

CliOptions
parse_args(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--model") {
            opt.model = parse_model(next(), argv[0]);
        } else if (arg == "--dataset") {
            opt.dataset = parse_dataset(next(), argv[0]);
        } else if (arg == "--graphs") {
            opt.graphs = std::stoul(next());
        } else if (arg == "--pnode") {
            opt.config.p_node = std::stoul(next());
        } else if (arg == "--pedge") {
            opt.config.p_edge = std::stoul(next());
        } else if (arg == "--papply") {
            opt.config.p_apply = std::stoul(next());
        } else if (arg == "--pscatter") {
            opt.config.p_scatter = std::stoul(next());
        } else if (arg == "--mode") {
            opt.config.mode = parse_mode(next(), argv[0]);
        } else if (arg == "--queue-depth") {
            opt.config.queue_depth = std::stoul(next());
        } else if (arg == "--replicas") {
            opt.service.replicas = std::stoul(next());
        } else if (arg == "--queue-capacity") {
            opt.service.queue_capacity = std::stoul(next());
        } else if (arg == "--balanced-banks") {
            opt.balanced_banks = true;
        } else if (arg == "--trace") {
            opt.trace_path = next();
        } else if (arg == "--metrics") {
            opt.metrics_path = next();
        } else if (arg == "--graph-file") {
            opt.graph_file = next();
        } else if (arg == "--shards") {
            opt.shards = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--dse") {
            opt.run_dse = true;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.balanced_banks)
        opt.config.bank_policy = BankPolicy::kGreedyBalanced;
    return opt;
}

int
run_dse(const CliOptions &opt)
{
    GraphSample probe = make_sample(opt.dataset, 0);
    Model model =
        make_model(opt.model, probe.node_dim(), probe.edge_dim());
    std::printf("Exploring the design space for %s on %s...\n\n",
                model_name(opt.model), dataset_spec(opt.dataset).name);
    auto points = explore_design_space(model, probe);
    std::printf("%-16s | %8s | %10s | %6s | %5s | %s\n", "config",
                "cycles", "ms", "DSP", "BRAM", "fits U50");
    int shown = 0;
    for (const auto &pt : points) {
        if (++shown > 10)
            break;
        std::printf("Pn%u Pe%u Pa%u Ps%-3u | %8llu | %10.4f | %6u | %5u | %s\n",
                    pt.config.p_node, pt.config.p_edge,
                    pt.config.p_apply, pt.config.p_scatter,
                    static_cast<unsigned long long>(pt.cycles),
                    pt.latency_ms(), pt.resources.dsp, pt.resources.bram,
                    pt.fits ? "yes" : "NO");
    }
    DsePoint best = best_fitting_config(model, probe);
    std::printf("\nRecommended: Pnode=%u Pedge=%u Papply=%u Pscatter=%u "
                "(%.4f ms, %u DSPs)\n",
                best.config.p_node, best.config.p_edge,
                best.config.p_apply, best.config.p_scatter,
                best.latency_ms(), best.resources.dsp);
    return 0;
}

} // namespace

int
run_service(const CliOptions &opt)
{
    std::unique_ptr<obs::TraceSession> session;
    if (!opt.trace_path.empty()) {
        session = std::make_unique<obs::TraceSession>();
        session->install();
    }

    GraphSample probe = make_sample(opt.dataset, 0);
    Model model =
        make_model(opt.model, probe.node_dim(), probe.edge_dim());
    ServiceConfig service_config = opt.service;
    service_config.metrics = obs::MetricsRegistry::global();
    InferenceService service(model, opt.config, service_config);

    if (session) {
        // Graph 0 with unit-trace capture: the replica merges the
        // engine's cycle rows onto the session timeline.
        RunOptions trace_opts;
        trace_opts.capture_trace = true;
        service.submit(probe, trace_opts).get();
    }

    std::printf("%s on %s, %s, Pnode=%u Pedge=%u Papply=%u Pscatter=%u, "
                "queue depth %zu, %zu replicas\n",
                model_name(opt.model), dataset_spec(opt.dataset).name,
                pipeline_mode_name(opt.config.mode), opt.config.p_node,
                opt.config.p_edge, opt.config.p_apply,
                opt.config.p_scatter, opt.config.queue_depth,
                service.replica_count());

    SampleStream stream(opt.dataset, opt.graphs);
    std::size_t count = std::max<std::size_t>(stream.size(), 1);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(service.submit(stream.next()));

    double latency = 0.0, nt_util = 0.0, mp_util = 0.0, imb = 0.0;
    for (auto &future : futures) {
        RunResult r = future.get();
        latency += r.latency_ms();
        double nu = 0.0, mu = 0.0;
        for (const auto &u : r.stats.nt_units)
            nu += u.utilization();
        for (const auto &u : r.stats.mp_units)
            mu += u.utilization();
        nt_util += nu / r.stats.nt_units.size();
        mp_util += mu / r.stats.mp_units.size();
        imb += r.stats.observed_mp_imbalance();
    }
    std::printf("\nGraphs streamed:      %zu (batch size 1, zero "
                "pre-processing)\n",
                count);
    std::printf("Avg latency:          %.4f ms\n", latency / count);
    std::printf("Avg NT utilization:   %.1f%%\n",
                100.0 * nt_util / count);
    std::printf("Avg MP utilization:   %.1f%%\n",
                100.0 * mp_util / count);
    std::printf("Avg MP imbalance:     %.2f%%\n", 100.0 * imb / count);

    StreamRunner runner(service);
    SampleStream stream2(opt.dataset, opt.graphs);
    StreamRunStats st = runner.run(stream2, count);
    std::printf("Stream throughput:    %.0f graphs/s (load/compute "
                "overlap %.2fx)\n",
                st.graphs_per_second(opt.config.clock_mhz),
                st.throughput_speedup());

    ServiceStats svc = service.stats();
    std::printf("\nService: %zu submitted, %zu completed, %zu rejected; "
                "host throughput %.0f graphs/s\n",
                svc.submitted, svc.completed, svc.rejected,
                svc.throughput_gps);
    std::printf("Service latency:      p50 %.3f ms | p95 %.3f ms | "
                "p99 %.3f ms (wall, submit->done)\n",
                svc.p50_ms, svc.p95_ms, svc.p99_ms);
    std::printf("Submission queue:     peak %zu / %zu\n",
                svc.queue_peak_occupancy, svc.queue_capacity);
    for (std::size_t r = 0; r < svc.replicas.size(); ++r)
        std::printf("Replica %zu:            %zu graphs, %.1f%% busy\n",
                    r, svc.replicas[r].completed,
                    100.0 * svc.replicas[r].utilization);

    service.drain();
    if (session)
        write_trace(*session, opt.trace_path);
    if (!opt.metrics_path.empty())
        write_metrics(opt.metrics_path);
    return 0;
}

/**
 * One on-disk graph, sharded from disk: io load -> pool admission
 * (queue wait) -> die lease -> ghost-exchange job (functional pass,
 * per-die pricing, per-layer boundary exchanges). With --trace the
 * whole chain lands on a single Perfetto timeline.
 */
int
run_sharded_file(const CliOptions &opt)
{
    std::unique_ptr<obs::TraceSession> session;
    if (!opt.trace_path.empty()) {
        session = std::make_unique<obs::TraceSession>();
        session->install();
        session->name_thread(obs::Track::kHost, "driver");
        session->name_thread(obs::Track::kIo, "driver");
    }
    auto registry = obs::MetricsRegistry::global();
    obs::StageProfiler profiler(registry);
    obs::Sampler sampler(registry, std::chrono::milliseconds(5));
    sampler.add_rss_probe();
    sampler.start();

    GraphSample sample;
    profiler.stage("load", [&] {
        LoadOptions lo;
        lo.node_dim = 16;
        sample = load_graph_sample(opt.graph_file, lo);
    });

    Model model =
        make_model(opt.model, sample.node_dim(), sample.edge_dim());
    PoolConfig pool_config;
    pool_config.num_dies = opt.shards;
    pool_config.metrics = registry;
    PoolScheduler pool(model, opt.config, pool_config);

    ShardConfig shard;
    shard.num_shards = opt.shards;
    shard.mode = ShardMode::kGhostExchange;

    ShardedRunResult result;
    profiler.stage("run", [&] {
        result = pool.submit_sharded(std::move(sample), shard).get();
    });
    sampler.stop();

    std::printf("%s on %s: %u dies (ghost exchange)\n",
                model_name(opt.model), opt.graph_file.c_str(),
                static_cast<std::uint32_t>(result.shards.size()));
    std::printf("cut edges %zu  replication %.3f  cycles %llu  "
                "latency %.4f ms  prediction %.6f\n",
                result.cut_edges, result.replication_factor,
                static_cast<unsigned long long>(
                    result.stats.total_cycles),
                result.stats.latency_ms(), result.prediction);
    for (const obs::StageProfile &s : profiler.stages())
        std::printf("%-6s %9.3f s   rss %8.1f MB   peak %8.1f MB\n",
                    s.name.c_str(), s.seconds,
                    static_cast<double>(s.rss_kb) / 1024.0,
                    static_cast<double>(s.hwm_kb) / 1024.0);
    PoolStats ps = pool.stats();
    std::printf("pool: %zu jobs, queue delay p50 %.3f ms\n",
                ps.submitted(), ps.queue_delay_p50_ms);

    pool.shutdown();
    if (session)
        write_trace(*session, opt.trace_path);
    if (!opt.metrics_path.empty())
        write_metrics(opt.metrics_path);
    return 0;
}

int
main(int argc, char **argv)
{
    CliOptions opt = parse_args(argc, argv);
    try {
        if (opt.run_dse)
            return run_dse(opt);
        if (!opt.graph_file.empty())
            return run_sharded_file(opt);
        return run_service(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
