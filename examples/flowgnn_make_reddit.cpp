/**
 * @file
 * flowgnn_make_reddit — writes the Reddit-class synthetic graph to the
 * FGNB binary format at FULL scale: 232,965 nodes and ~114.6M directed
 * edges, the paper's Table IV row with no 1/64 scaling.
 *
 * The in-process dataset generator (src/datasets) deliberately scales
 * Reddit down by 64x so every bench can synthesize it per run; that
 * stand-in never exercised the sharding/pool stack at the scale it was
 * built for. This tool pays the generation cost once, writes the
 * result to disk, and every subsequent bench/shard run bulk-loads it
 * in seconds (--graph-file on bench_shard_scaling,
 * bench_table4_datasets, and examples/large_graph_shard) — CI-
 * reproducible "real scale" without shipping 900 MB of data.
 *
 *   ./flowgnn_make_reddit --out reddit.fgnb [--scale D] [--nodes N]
 *                         [--m M] [--node-dim F] [--seed S]
 *                         [--threads T]
 *
 * --threads parallelizes the FGNB write's column transforms and the
 * v2 chunked checksum (0 = all host cores, the default); generation
 * itself stays serial — BA attachment is a sequential random process.
 *
 * --scale divides the Table IV node/edge targets (64 reproduces the
 * in-process stand-in's size; 1 — the default — is full scale). The
 * generator is Barabási–Albert preferential attachment with
 * m = round(avg_degree / 2) = 246 at full scale, symmetrized, matching
 * the power-law degree shape the in-process generator uses; the edge
 * count lands within 0.1% of the Table IV 114,615,892 (exact-count
 * adjustment is skipped: it needs a dedup set that does not scale).
 * --node-dim > 0 embeds deterministic N(0, 0.5) features in the file;
 * the default 0 stores structure only and lets load_graph_sample
 * generate features (same distribution) at load time.
 */
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>

#include "graph/generators.h"
#include "io/graph_file.h"
#include "tensor/rng.h"

using namespace flowgnn;

int
main(int argc, char **argv)
{
    // Table IV Reddit targets.
    constexpr NodeId kRedditNodes = 232965;
    constexpr double kRedditEdges = 114615892.0;

    std::string out_path;
    std::uint32_t scale = 1;
    NodeId nodes = 0;
    std::uint32_t m = 0;
    std::size_t node_dim = 0;
    std::uint64_t seed = 0xF10733DBull;
    unsigned threads = 0;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--out") && a + 1 < argc)
            out_path = argv[++a];
        else if (!std::strcmp(argv[a], "--scale") && a + 1 < argc)
            scale = static_cast<std::uint32_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--nodes") && a + 1 < argc)
            nodes = static_cast<NodeId>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--m") && a + 1 < argc)
            m = static_cast<std::uint32_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--node-dim") && a + 1 < argc)
            node_dim = static_cast<std::size_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--seed") && a + 1 < argc)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--threads") && a + 1 < argc)
            threads = static_cast<unsigned>(std::atoll(argv[++a]));
        else {
            std::fprintf(stderr,
                         "usage: flowgnn_make_reddit --out PATH "
                         "[--scale D] [--nodes N] [--m M] "
                         "[--node-dim F] [--seed S] [--threads T]\n");
            return 1;
        }
    }
    if (out_path.empty() || scale == 0) {
        std::fprintf(stderr, "error: --out is required and --scale "
                             "must be >= 1\n");
        return 1;
    }

    if (nodes == 0)
        nodes = static_cast<NodeId>(kRedditNodes / scale);
    if (m == 0) {
        // Same derivation the in-process generator uses: BA attaches
        // m links per node and symmetrizes, so the average directed
        // out-degree is ~2m.
        double avg_out_deg = kRedditEdges / double(kRedditNodes);
        m = static_cast<std::uint32_t>(avg_out_deg / 2.0 + 0.5);
    }

    std::printf("generating Barabási–Albert graph: %u nodes, m=%u "
                "(expect ~%.1fM directed edges)...\n",
                nodes, m, 2.0 * double(m) * double(nodes) / 1e6);
    Rng rng(seed);
    GraphSample s;
    s.graph = make_barabasi_albert(nodes, m, rng);
    s.node_features =
        gaussian_features(nodes, node_dim, seed ^ 0xFEA7);

    std::printf("writing %s: %u nodes / %zu edges, node_dim %zu...\n",
                out_path.c_str(), s.graph.num_nodes, s.num_edges(),
                node_dim);
    try {
        GraphFile::save(out_path, s, {.threads = threads});
    } catch (const GraphFileError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    double gb = (88.0 + 8.0 * double(s.num_edges()) +
                 4.0 * double(nodes) * double(node_dim)) /
                (1024.0 * 1024.0 * 1024.0);
    std::printf("done: %.2f GiB, avg degree %.1f\n", gb,
                double(s.num_edges()) / double(nodes));
    return 0;
}
