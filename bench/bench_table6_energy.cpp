/**
 * @file
 * Reproduces paper Table VI: energy efficiency (graphs/kJ) on MolHIV
 * at batch size 1, CPU vs GPU vs FlowGNN.
 */
#include "bench_common.h"
#include "perf/baselines.h"
#include "perf/energy.h"
#include "shard/sharded_engine.h"

using namespace flowgnn;

namespace {

struct PaperRow {
    ModelKind kind;
    double cpu_ee, gpu_ee, flowgnn_ee;
};

// Table VI published values (graphs/kJ).
const PaperRow kPaper[] = {
    {ModelKind::kGin, 4.48e3, 4.50e3, 7.34e5},
    {ModelKind::kGinVn, 3.16e3, 2.99e3, 6.46e5},
    {ModelKind::kGcn, 4.02e3, 3.50e3, 8.88e5},
    {ModelKind::kGat, 6.29e3, 5.41e3, 2.29e6},
    {ModelKind::kPna, 2.52e3, 2.33e3, 6.11e5},
    {ModelKind::kDgn, 1.40e3, 7.96e2, 1.39e6},
};

} // namespace

int
main()
{
    bench::banner(
        "Table VI — energy efficiency (graphs/kJ), MolHIV, batch 1",
        "EE = 1e6 / (platform power [W] x latency [ms]); platform "
        "powers: CPU 105 W, GPU 140 W, FPGA 27 W.");

    const std::size_t kGraphs = 64;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);

    std::printf("%-7s | %19s | %19s | %23s | %9s\n", "Model",
                "CPU (pap/meas)", "GPU (pap/meas)",
                "FlowGNN (pap/meas)", "vs GPU");
    bench::rule(94);
    for (const auto &row : kPaper) {
        Model model =
            make_model(row.kind, probe.node_dim(), probe.edge_dim());
        bench::StreamResult fg =
            bench::run_stream(model, {}, DatasetKind::kMolHiv, kGraphs);

        GraphSample prepared = model.prepare(probe);
        double cpu_ms = CpuModel(row.kind).latency_ms(model, prepared);
        double gpu_ms =
            GpuModel(row.kind).latency_ms(model, prepared, 1);

        double cpu_ee = graphs_per_kj(Platform::kCpu, cpu_ms);
        double gpu_ee = graphs_per_kj(Platform::kGpu, gpu_ms);
        double fg_ee =
            graphs_per_kj(Platform::kFpga, fg.avg_latency_ms);

        std::printf(
            "%-7s | %8.2e / %8.2e | %8.2e / %8.2e | %9.2e / %9.2e | %7.0fx\n",
            model_name(row.kind), row.cpu_ee, cpu_ee, row.gpu_ee, gpu_ee,
            row.flowgnn_ee, fg_ee, fg_ee / gpu_ee);
    }
    bench::rule(94);
    std::printf("Paper: 163x-1748x energy efficiency over GPU.\n");

    // ---- Scale-out point: the multi-die energy model (link +
    // replicated-halo storage) on a graph too large for one die.
    // Latency drops near-linearly with dies while per-run energy
    // grows slightly: dies burn power for the shared makespan and the
    // link + halo overheads are pure additions — the energy cost of
    // speed, quantified. ----
    std::printf("\nScale-out: 60k-node ring lattice, GCN-16, "
                "contiguous shards, %u-word/cycle link\n\n",
                LinkConfig{}.words_per_cycle);
    constexpr NodeId kNodes = 60000;
    constexpr std::size_t kDim = 16;
    GraphSample large = bench::make_lattice_workload(kNodes, kDim, 0xE6);
    Model gcn16 = make_model(ModelKind::kGcn16, kDim, 0);

    std::printf("%4s | %10s | %10s | %8s | %8s | %10s | %8s\n", "dies",
                "latency ms", "compute mJ", "link mJ", "halo mJ",
                "graphs/kJ", "speedup");
    bench::rule(78);
    double base_ms = 0.0;
    for (std::uint32_t dies : {1u, 2u, 4u}) {
        ShardConfig shard;
        shard.num_shards = dies;
        shard.strategy = ShardStrategy::kContiguous;
        ShardedRunResult r =
            ShardedEngine(gcn16, {}, shard).run(large);
        std::uint64_t link_words = 0;
        for (const ShardInfo &info : r.shards)
            link_words += info.halo_words;
        MultiDieEnergy e = multi_die_energy(
            dies, r.latency_ms(), link_words, r.replication_factor,
            kNodes, kDim);
        if (dies == 1)
            base_ms = r.latency_ms();
        std::printf(
            "%4u | %10.3f | %10.3f | %8.4f | %8.4f | %10.3e | %7.2fx\n",
            dies, r.latency_ms(), e.compute_mj, e.link_mj, e.halo_mj,
            e.graphs_per_kj, base_ms / r.latency_ms());
    }
    bench::rule(78);
    std::printf("Near-linear latency scaling at near-constant energy: "
                "the link+halo tax of contiguous shards is tiny.\n");
    return 0;
}
