/**
 * @file
 * Reproduces paper Table VI: energy efficiency (graphs/kJ) on MolHIV
 * at batch size 1, CPU vs GPU vs FlowGNN.
 */
#include "bench_common.h"
#include "perf/baselines.h"
#include "perf/energy.h"
#include "pool/pool_energy.h"
#include "pool/schedule_sim.h"
#include "shard/sharded_engine.h"

using namespace flowgnn;

namespace {

struct PaperRow {
    ModelKind kind;
    double cpu_ee, gpu_ee, flowgnn_ee;
};

// Table VI published values (graphs/kJ).
const PaperRow kPaper[] = {
    {ModelKind::kGin, 4.48e3, 4.50e3, 7.34e5},
    {ModelKind::kGinVn, 3.16e3, 2.99e3, 6.46e5},
    {ModelKind::kGcn, 4.02e3, 3.50e3, 8.88e5},
    {ModelKind::kGat, 6.29e3, 5.41e3, 2.29e6},
    {ModelKind::kPna, 2.52e3, 2.33e3, 6.11e5},
    {ModelKind::kDgn, 1.40e3, 7.96e2, 1.39e6},
};

} // namespace

int
main()
{
    bench::banner(
        "Table VI — energy efficiency (graphs/kJ), MolHIV, batch 1",
        "EE = 1e6 / (platform power [W] x latency [ms]); platform "
        "powers: CPU 105 W, GPU 140 W, FPGA 27 W.");

    const std::size_t kGraphs = 64;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);

    std::printf("%-7s | %19s | %19s | %23s | %9s\n", "Model",
                "CPU (pap/meas)", "GPU (pap/meas)",
                "FlowGNN (pap/meas)", "vs GPU");
    bench::rule(94);
    for (const auto &row : kPaper) {
        Model model =
            make_model(row.kind, probe.node_dim(), probe.edge_dim());
        bench::StreamResult fg =
            bench::run_stream(model, {}, DatasetKind::kMolHiv, kGraphs);

        GraphSample prepared = model.prepare(probe);
        double cpu_ms = CpuModel(row.kind).latency_ms(model, prepared);
        double gpu_ms =
            GpuModel(row.kind).latency_ms(model, prepared, 1);

        double cpu_ee = graphs_per_kj(Platform::kCpu, cpu_ms);
        double gpu_ee = graphs_per_kj(Platform::kGpu, gpu_ms);
        double fg_ee =
            graphs_per_kj(Platform::kFpga, fg.avg_latency_ms);

        std::printf(
            "%-7s | %8.2e / %8.2e | %8.2e / %8.2e | %9.2e / %9.2e | %7.0fx\n",
            model_name(row.kind), row.cpu_ee, cpu_ee, row.gpu_ee, gpu_ee,
            row.flowgnn_ee, fg_ee, fg_ee / gpu_ee);
    }
    bench::rule(94);
    std::printf("Paper: 163x-1748x energy efficiency over GPU.\n");

    // ---- Scale-out point: the multi-die energy model (link +
    // replicated-halo storage) on a graph too large for one die.
    // Latency drops near-linearly with dies while per-run energy
    // grows slightly: dies burn power for the shared makespan and the
    // link + halo overheads are pure additions — the energy cost of
    // speed, quantified. ----
    std::printf("\nScale-out: 60k-node ring lattice, GCN-16, "
                "contiguous shards, %u-word/cycle link\n\n",
                LinkConfig{}.words_per_cycle);
    constexpr NodeId kNodes = 60000;
    constexpr std::size_t kDim = 16;
    GraphSample large = bench::make_lattice_workload(kNodes, kDim, 0xE6);
    Model gcn16 = make_model(ModelKind::kGcn16, kDim, 0);

    std::printf("%4s | %10s | %10s | %8s | %8s | %10s | %8s\n", "dies",
                "latency ms", "compute mJ", "link mJ", "halo mJ",
                "graphs/kJ", "speedup");
    bench::rule(78);
    struct ScaleRow {
        std::uint32_t dies;
        double latency_ms;
        std::uint64_t link_words;
        double replication;
        std::vector<double> die_busy_ms;
    };
    std::vector<ScaleRow> scale_rows;
    double base_ms = 0.0;
    for (std::uint32_t dies : {1u, 2u, 4u}) {
        ShardConfig shard;
        shard.num_shards = dies;
        shard.strategy = ShardStrategy::kContiguous;
        ShardedRunResult r =
            ShardedEngine(gcn16, {}, shard).run(large);
        std::uint64_t link_words = 0;
        for (const ShardInfo &info : r.shards)
            link_words += info.halo_words;
        MultiDieEnergy e = multi_die_energy(
            dies, r.latency_ms(), link_words, r.replication_factor,
            kNodes, kDim);
        if (dies == 1)
            base_ms = r.latency_ms();
        std::printf(
            "%4u | %10.3f | %10.3f | %8.4f | %8.4f | %10.3e | %7.2fx\n",
            dies, r.latency_ms(), e.compute_mj, e.link_mj, e.halo_mj,
            e.graphs_per_kj, base_ms / r.latency_ms());

        ScaleRow row;
        row.dies = dies;
        row.latency_ms = r.latency_ms();
        row.link_words = link_words;
        row.replication = r.replication_factor;
        // Per-die busy wall time from the composed chains; a
        // non-sharded run is one die busy for the whole makespan.
        const double per_cycle_ms = 1.0 / (r.stats.clock_mhz * 1e3);
        if (r.stats.die_cycles.empty())
            row.die_busy_ms.push_back(r.latency_ms());
        else
            for (std::uint64_t c : r.stats.die_cycles)
                row.die_busy_ms.push_back(
                    static_cast<double>(c) * per_cycle_ms);
        scale_rows.push_back(std::move(row));
    }
    bench::rule(78);
    std::printf("Near-linear latency scaling at near-constant energy: "
                "the link+halo tax of contiguous shards is tiny.\n");

    // ---- Busy-vs-idle breakdown on a fixed chassis. A die that
    // finished its slice early — or never got one — still burns
    // static power (9 W vs 27 W active) until the merge barrier
    // releases the run. Narrow jobs on a wide chassis pay for the
    // idle dies; the all-busy model overstates wide jobs slightly and
    // understates narrow ones. ----
    constexpr std::uint32_t kChassisDies = 4;
    std::printf("\nSame jobs on a fixed %u-die chassis "
                "(active %g W, static %g W per die):\n\n",
                kChassisDies, platform_power_w(Platform::kFpga),
                platform_idle_power_w(Platform::kFpga));
    std::printf("%5s | %10s | %8s | %8s | %10s | %10s | %12s\n",
                "width", "latency ms", "busy mJ", "idle mJ",
                "compute mJ", "graphs/kJ", "vs all-busy");
    bench::rule(82);
    for (const ScaleRow &row : scale_rows) {
        MultiDieEnergy split = multi_die_energy(
            kChassisDies, row.latency_ms, row.link_words,
            row.replication, kNodes, kDim, row.die_busy_ms);
        MultiDieEnergy all_busy = multi_die_energy(
            kChassisDies, row.latency_ms, row.link_words,
            row.replication, kNodes, kDim);
        std::printf(
            "%5u | %10.3f | %8.3f | %8.3f | %10.3f | %10.3e | %11.2f%%\n",
            row.dies, row.latency_ms, split.busy_mj, split.idle_mj,
            split.compute_mj, split.graphs_per_kj,
            100.0 * split.total_mj / all_busy.total_mj);
    }
    bench::rule(82);
    std::printf(
        "A 1-wide job on the 4-die chassis runs ~%.0f%% of the "
        "all-busy energy model: three dies only leak.\nGang-scheduled "
        "full-width jobs approach it from below — idle energy is the "
        "cost of fragmentation, not of sharding.\n",
        100.0 * (platform_power_w(Platform::kFpga) +
                 (kChassisDies - 1) *
                     platform_idle_power_w(Platform::kFpga)) /
            (kChassisDies * platform_power_w(Platform::kFpga)));

    // ---- Measured occupancy per scheduling policy. The previous
    // section priced one job's busy/idle split; here the pool
    // scheduler's simulated timeline prices a whole queue. Gang
    // scheduling leaves reservation holes (idle dies held for a
    // blocked wide job), space sharing packs them — the occupancy
    // trace from schedule_sim feeds the same busy/idle energy model,
    // so the idle-mJ column is the measured fragmentation cost of the
    // policy, not an analytic guess. ----
    const std::vector<SimJob> queue = {
        {{4000, 4000, 4000}, 0},
        {{1000, 1000, 1000, 1000}, 100}, // blocked wide head under gang
        {{1900}, 200}, // fits the hole before the 4000 reservation
        {{1800}, 300}, // chains behind it, still inside the hole
        {{900}, 350},  // would overrun the reservation: EASY denies it
    };
    struct PolicyRow {
        const char *label;
        PoolPolicy policy;
        bool backfill;
    };
    const PolicyRow policies[] = {
        {"fifo-gang", PoolPolicy::kFifoGang, false},
        {"fifo-gang+bf", PoolPolicy::kFifoGang, true},
        {"space-share", PoolPolicy::kSpaceShare, false},
    };
    const double clock_mhz = EngineConfig{}.clock_mhz;
    std::printf("\nQueue of 5 jobs (widths 3/4/1/1/1) on the %u-die "
                "chassis, simulated occupancy -> energy at %g MHz:\n\n",
                kChassisDies, clock_mhz);
    std::printf("%-14s | %8s | %6s | %10s | %8s | %8s | %8s\n",
                "policy", "makespan", "util", "wide done", "busy mJ",
                "idle mJ", "total mJ");
    bench::rule(80);
    for (const PolicyRow &pr : policies) {
        SimOptions opt;
        opt.num_dies = kChassisDies;
        opt.policy = pr.policy;
        opt.easy_backfill = pr.backfill;
        SimResult r = simulate_pool_schedule(queue, opt);
        MultiDieEnergy e = pool_schedule_energy(r, clock_mhz);
        std::printf(
            "%-14s | %8llu | %5.1f%% | %10llu | %8.4f | %8.4f | %8.4f\n",
            pr.label, static_cast<unsigned long long>(r.makespan),
            100.0 * r.utilization(),
            static_cast<unsigned long long>(r.job_finish(1)),
            e.busy_mj, e.idle_mj, e.total_mj);
    }
    bench::rule(80);
    std::printf("Backfill reclaims the gang reservation hole without "
                "moving the wide job; space sharing matches its "
                "energy\nby trickling the wide job's tasks one die at "
                "a time — fine for independent tasks, wrong for gangs "
                "that\nexchange at layer boundaries.\n");
    return 0;
}
