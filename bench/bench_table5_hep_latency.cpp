/**
 * @file
 * Reproduces paper Table V: batch-1 end-to-end latency on the HEP
 * dataset — CPU and GPU analytical baselines vs the FlowGNN engine —
 * for all six models.
 */
#include "bench_common.h"
#include "perf/baselines.h"

using namespace flowgnn;

namespace {

struct PaperRow {
    ModelKind kind;
    double cpu_ms, gpu_ms, flowgnn_ms;
};

// Table V published values (ms, batch 1, averaged over the HEP set).
const PaperRow kPaper[] = {
    {ModelKind::kGin, 4.23, 2.38, 0.1799},
    {ModelKind::kGinVn, 5.02, 3.51, 0.2076},
    {ModelKind::kGcn, 4.59, 3.01, 0.1639},
    {ModelKind::kGat, 2.24, 1.96, 0.0544},
    {ModelKind::kPna, 9.66, 5.37, 0.1578},
    {ModelKind::kDgn, 30.20, 61.26, 0.1382},
};

} // namespace

int
main()
{
    bench::banner(
        "Table V — HEP batch-1 latency (ms): CPU vs GPU vs FlowGNN",
        "Engine: cycle simulation @ 300 MHz; CPU/GPU: calibrated "
        "analytical models. 64 streamed graphs per model.");

    const std::size_t kGraphs = 64;
    GraphSample probe = make_sample(DatasetKind::kHep, 0);

    std::printf("%-7s | %16s | %16s | %20s | %12s\n", "Model",
                "CPU (pap/meas)", "GPU (pap/meas)",
                "FlowGNN (pap/meas)", "vs GPU");
    bench::rule(88);
    for (const auto &row : kPaper) {
        Model model =
            make_model(row.kind, probe.node_dim(), probe.edge_dim());
        bench::StreamResult fg =
            bench::run_stream(model, {}, DatasetKind::kHep, kGraphs);

        GraphSample prepared = model.prepare(probe);
        double cpu = CpuModel(row.kind).latency_ms(model, prepared);
        double gpu = GpuModel(row.kind).latency_ms(model, prepared, 1);

        std::printf(
            "%-7s | %6.2f / %6.2f | %6.2f / %6.2f | %7.4f / %8.4f | %6.1fx\n",
            model_name(row.kind), row.cpu_ms, cpu, row.gpu_ms, gpu,
            row.flowgnn_ms, fg.avg_latency_ms, gpu / fg.avg_latency_ms);
    }
    bench::rule(88);
    std::printf("Paper speedups vs GPU: 13.3x (GIN) to 443.4x (DGN).\n");
    return 0;
}
