/**
 * @file
 * Shared helpers for the experiment-reproduction benchmarks: streaming
 * latency measurement and aligned table printing. Each bench binary
 * regenerates one table or figure of the paper and prints the paper's
 * published values next to ours.
 */
#ifndef FLOWGNN_BENCH_COMMON_H
#define FLOWGNN_BENCH_COMMON_H

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "datasets/dataset.h"
#include "graph/generators.h"
#include "serve/service.h"
#include "tensor/rng.h"

namespace flowgnn::bench {

/** Aggregated engine results over a sample stream. */
struct StreamResult {
    double avg_latency_ms = 0.0;
    double avg_cycles = 0.0;
    double observed_imbalance = 0.0;
    std::size_t graphs = 0;
};

/**
 * Streams `count` consecutive graphs (batch size 1, zero
 * pre-processing) through an InferenceService over the given
 * configuration and averages latency, mirroring the paper's on-board
 * measurement loop. The modeled cycle counts are per-graph
 * deterministic, so the averages are independent of replica count.
 */
inline StreamResult
run_stream(const Model &model, const EngineConfig &config,
           DatasetKind dataset, std::size_t count)
{
    SampleStream stream(dataset, count);
    StreamResult out;
    out.graphs = stream.size();

    InferenceService service(model, config);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(out.graphs);
    for (std::size_t i = 0; i < out.graphs; ++i)
        futures.push_back(service.submit(stream.next()));

    double imb = 0.0;
    for (auto &future : futures) {
        RunResult r = future.get();
        out.avg_latency_ms += r.latency_ms();
        out.avg_cycles += static_cast<double>(r.stats.total_cycles);
        imb += r.stats.observed_mp_imbalance();
    }
    out.avg_latency_ms /= static_cast<double>(out.graphs);
    out.avg_cycles /= static_cast<double>(out.graphs);
    out.observed_imbalance = imb / static_cast<double>(out.graphs);
    return out;
}

/** Wraps any graph with deterministic Gaussian node features — the
 * one feature distribution every scale-out bench shares
 * (graph/sample.h's gaussian_features, also used by the io loader). */
inline GraphSample
with_features(CooGraph graph, std::size_t node_dim, std::uint64_t seed)
{
    GraphSample s;
    s.graph = std::move(graph);
    s.node_features =
        gaussian_features(s.graph.num_nodes, node_dim, seed);
    return s;
}

/**
 * The canonical large-graph sharding workload: a k=2 ring lattice
 * (node ids carry perfect locality) with deterministic Gaussian node
 * features. Shared by the shard/pool/energy scale-out benches so they
 * all study the same graph family.
 */
inline GraphSample
make_lattice_workload(NodeId nodes, std::size_t node_dim,
                      std::uint64_t seed)
{
    return with_features(make_ring_lattice(nodes, 2), node_dim, seed);
}

/** Prints a horizontal rule sized to the table width. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Prints the standard bench banner. */
inline void
banner(const char *what, const char *detail)
{
    std::printf("\n=== FlowGNN reproduction: %s ===\n%s\n\n", what, detail);
}

} // namespace flowgnn::bench

#endif // FLOWGNN_BENCH_COMMON_H
