/**
 * @file
 * Ablation: fixed-point datapath precision.
 *
 * The deployed FlowGNN kernels compute in ap_fixed; this bench sweeps
 * Q-formats and reports the output drift vs the fp32 reference for
 * every paper model on MolHIV — the analysis behind choosing a 16-bit
 * datapath for the board build. Cycle counts are format-independent
 * (precision changes datapath width, not the schedule).
 *
 * The second section is the multi-die question: does sharding compound
 * quantization error? Halo mode never re-quantizes (each die holds its
 * closure in full precision); ghost mode re-quantizes every embedding
 * at every boundary crossing — but the engine's quantizer is
 * idempotent, so shipped values are already exactly representable and
 * the crossing is value-preserving. The sweep (format x shard count x
 * mode, single NT unit) demonstrates it: drift is flat in the shard
 * count and identical between modes, i.e. error depends on the
 * datapath format alone, never on how many dies the graph spans.
 */
#include <cmath>

#include "bench_common.h"
#include "graph/generators.h"
#include "shard/sharded_engine.h"
#include "tensor/fixed_point.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

using namespace flowgnn;

namespace {

/** Mean/max embedding error over a small stream of graphs. */
struct Drift {
    double max_abs = 0.0;
    double mean_abs = 0.0;
};

Drift
measure_drift(const Model &model, FixedPointFormat fmt,
              std::size_t graphs)
{
    // Fixed-point emulation is a per-run option: the same service
    // replicas would serve fp32 requests unchanged.
    RunOptions opts;
    opts.emulate_fixed_point = true;
    opts.fixed_point = fmt;

    InferenceService service(model);
    SampleStream stream(DatasetKind::kMolHiv, graphs);
    std::vector<GraphSample> samples;
    std::vector<std::future<RunResult>> futures;
    samples.reserve(stream.size());
    futures.reserve(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        samples.push_back(stream.next());
        futures.push_back(service.submit(samples.back(), opts));
    }

    Drift drift;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        Matrix quantized = futures[i].get().embeddings;
        Matrix reference =
            model.reference_embeddings(model.prepare(samples[i]));
        for (std::size_t k = 0; k < quantized.size(); ++k) {
            double d = std::abs(quantized.data()[k] -
                                reference.data()[k]);
            drift.max_abs = std::max(drift.max_abs, d);
            sum += d;
            ++count;
        }
    }
    drift.mean_abs = sum / static_cast<double>(count);
    return drift;
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation — fixed-point datapath precision (MolHIV, 16 graphs)",
        "Embedding drift vs the fp32 reference per Q-format. The board "
        "kernels use a 16-bit datapath; 8 bits visibly degrades.");

    const FixedPointFormat formats[] = {
        {24, 12}, {16, 8}, {12, 6}, {8, 4}};

    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);

    std::printf("%-7s", "Model");
    char name[16];
    for (const auto &fmt : formats)
        std::printf(" | %-21s", fmt.name_into(name, sizeof name));
    std::printf("\n%-7s", "");
    for (std::size_t i = 0; i < std::size(formats); ++i)
        std::printf(" | %10s %10s", "max", "mean");
    std::printf("\n");
    bench::rule(105);

    for (ModelKind kind : kPaperModels) {
        Model model =
            make_model(kind, probe.node_dim(), probe.edge_dim());
        std::printf("%-7s", model_name(kind));
        for (const auto &fmt : formats) {
            Drift d = measure_drift(model, fmt, 16);
            std::printf(" | %10.2e %10.2e", d.max_abs, d.mean_abs);
        }
        std::printf("\n");
    }
    bench::rule(105);
    std::printf("Expected: drift shrinks monotonically with precision. "
                "GIN+VN saturates below 24 bits: the virtual node\n"
                "amplifies (untrained) activations beyond the 16-bit "
                "range — why deployments calibrate formats per model.\n");

    // ---- Quantization error vs shard count, halo vs ghost ------------
    bench::banner(
        "Quantization error vs shard count (GCN-16, Barabási–Albert)",
        "Max |sharded fixed-point - fp32 reference| per format, shard "
        "count, and ShardMode, with one NT unit (order-preserving). "
        "Ghost mode re-quantizes at every boundary crossing; "
        "idempotent quantization keeps the drift flat in P and "
        "identical to halo — sharding never compounds datapath error.");

    Rng rng(0xFACE);
    GraphSample big = bench::with_features(
        make_barabasi_albert(3000, 4, rng), 16, 0xFACE1);
    Model gcn16 = make_model(ModelKind::kGcn16, 16, 0);
    Matrix reference =
        gcn16.reference_embeddings(gcn16.prepare(big));

    EngineConfig ecfg;
    ecfg.p_node = 1; // src-major everywhere: isolates quantization
    const std::uint32_t shard_counts[] = {1, 2, 4};
    const ShardMode shard_modes[] = {ShardMode::kHaloReplication,
                                     ShardMode::kGhostExchange};

    std::printf("%-9s %-7s", "format", "mode");
    for (std::uint32_t p : shard_counts)
        std::printf(" %14s%u", "max drift P=", p);
    std::printf("\n");
    bench::rule(66);
    char fmt_name[16];
    for (const auto &fmt : formats) {
        RunOptions opts;
        opts.emulate_fixed_point = true;
        opts.fixed_point = fmt;
        for (ShardMode mode : shard_modes) {
            std::printf("%-9s %-7s",
                        fmt.name_into(fmt_name, sizeof fmt_name),
                        shard_mode_name(mode));
            for (std::uint32_t p : shard_counts) {
                ShardConfig shard;
                shard.num_shards = p;
                shard.strategy = ShardStrategy::kFennel;
                shard.mode = mode;
                ShardedRunResult r =
                    ShardedEngine(gcn16, ecfg, shard).run(big, opts);
                double drift = 0.0;
                for (std::size_t k = 0; k < r.embeddings.size(); ++k)
                    drift = std::max(
                        drift,
                        static_cast<double>(std::abs(
                            r.embeddings.data()[k] -
                            reference.data()[k])));
                std::printf(" %15.2e", drift);
            }
            std::printf("\n");
        }
    }
    bench::rule(66);
    std::printf(
        "Expected: within each format the two mode rows agree exactly "
        "and every P column repeats P=1 —\nerror growth with shard "
        "count is zero by construction (idempotent re-quantization at "
        "the boundary).\n");
    return 0;
}
