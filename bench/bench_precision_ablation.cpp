/**
 * @file
 * Ablation: fixed-point datapath precision.
 *
 * The deployed FlowGNN kernels compute in ap_fixed; this bench sweeps
 * Q-formats and reports the output drift vs the fp32 reference for
 * every paper model on MolHIV — the analysis behind choosing a 16-bit
 * datapath for the board build. Cycle counts are format-independent
 * (precision changes datapath width, not the schedule).
 */
#include <cmath>

#include "bench_common.h"
#include "tensor/fixed_point.h"
#include "tensor/ops.h"

using namespace flowgnn;

namespace {

/** Mean/max embedding error over a small stream of graphs. */
struct Drift {
    double max_abs = 0.0;
    double mean_abs = 0.0;
};

Drift
measure_drift(const Model &model, FixedPointFormat fmt,
              std::size_t graphs)
{
    EngineConfig cfg;
    cfg.emulate_fixed_point = true;
    cfg.fixed_point = fmt;
    Engine engine(model, cfg);

    Drift drift;
    double sum = 0.0;
    std::size_t count = 0;
    SampleStream stream(DatasetKind::kMolHiv, graphs);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        GraphSample s = stream.next();
        Matrix quantized = engine.run(s).embeddings;
        Matrix reference =
            model.reference_embeddings(model.prepare(s));
        for (std::size_t k = 0; k < quantized.size(); ++k) {
            double d = std::abs(quantized.data()[k] -
                                reference.data()[k]);
            drift.max_abs = std::max(drift.max_abs, d);
            sum += d;
            ++count;
        }
    }
    drift.mean_abs = sum / static_cast<double>(count);
    return drift;
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation — fixed-point datapath precision (MolHIV, 16 graphs)",
        "Embedding drift vs the fp32 reference per Q-format. The board "
        "kernels use a 16-bit datapath; 8 bits visibly degrades.");

    const FixedPointFormat formats[] = {
        {24, 12}, {16, 8}, {12, 6}, {8, 4}};

    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);

    std::printf("%-7s", "Model");
    char name[16];
    for (const auto &fmt : formats)
        std::printf(" | %-21s", fmt.name_into(name, sizeof name));
    std::printf("\n%-7s", "");
    for (std::size_t i = 0; i < std::size(formats); ++i)
        std::printf(" | %10s %10s", "max", "mean");
    std::printf("\n");
    bench::rule(105);

    for (ModelKind kind : kPaperModels) {
        Model model =
            make_model(kind, probe.node_dim(), probe.edge_dim());
        std::printf("%-7s", model_name(kind));
        for (const auto &fmt : formats) {
            Drift d = measure_drift(model, fmt, 16);
            std::printf(" | %10.2e %10.2e", d.max_abs, d.mean_abs);
        }
        std::printf("\n");
    }
    bench::rule(105);
    std::printf("Expected: drift shrinks monotonically with precision. "
                "GIN+VN saturates below 24 bits: the virtual node\n"
                "amplifies (untrained) activations beyond the 16-bit "
                "range — why deployments calibrate formats per model.\n");
    return 0;
}
