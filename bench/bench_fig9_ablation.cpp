/**
 * @file
 * Reproduces paper Fig. 9: the pipeline-architecture ablation on GCN /
 * MolHIV — non-pipeline, fixed pipeline, baseline dataflow, and
 * FlowGNN-Papply-Pscatter variants, reported as speedup over
 * non-pipeline (and the incremental step ratios).
 */
#include "bench_common.h"

using namespace flowgnn;

namespace {

struct Variant {
    const char *label;
    EngineConfig config;
    double paper_speedup; ///< Fig. 9, over non-pipeline
};

EngineConfig
make_cfg(PipelineMode mode, std::uint32_t pn, std::uint32_t pe,
         std::uint32_t pa, std::uint32_t ps)
{
    EngineConfig c;
    c.mode = mode;
    c.p_node = pn;
    c.p_edge = pe;
    c.p_apply = pa;
    c.p_scatter = ps;
    return c;
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 9 — dataflow-architecture ablation (GCN on MolHIV)",
        "Speedup over the non-pipelined architecture; FlowGNN-a-s uses "
        "2 NT / 4 MP units with Papply=a, Pscatter=s.");

    const Variant variants[] = {
        {"Non-pipeline",
         make_cfg(PipelineMode::kNonPipelined, 1, 1, 1, 1), 1.00},
        {"Fixed-pipeline",
         make_cfg(PipelineMode::kFixedPipeline, 1, 1, 1, 1), 1.66},
        {"Baseline dataflow",
         make_cfg(PipelineMode::kBaselineDataflow, 1, 1, 1, 1), 2.29},
        {"FlowGNN-1-1", make_cfg(PipelineMode::kFlowGnn, 2, 4, 1, 1),
         3.32},
        {"FlowGNN-1-2", make_cfg(PipelineMode::kFlowGnn, 2, 4, 1, 2),
         4.92},
        {"FlowGNN-2-2", make_cfg(PipelineMode::kFlowGnn, 2, 4, 2, 2),
         5.20},
    };

    const std::size_t kGraphs = 48;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model gcn =
        make_model(ModelKind::kGcn, probe.node_dim(), probe.edge_dim());

    double base_cycles = 0.0;
    std::printf("%-18s | %10s | %17s | %9s\n", "Variant", "cycles",
                "speedup (pap/meas)", "step");
    bench::rule(66);
    double prev_cycles = 0.0;
    for (const auto &v : variants) {
        bench::StreamResult r = bench::run_stream(
            gcn, v.config, DatasetKind::kMolHiv, kGraphs);
        if (base_cycles == 0.0)
            base_cycles = r.avg_cycles;
        double speedup = base_cycles / r.avg_cycles;
        double step =
            prev_cycles == 0.0 ? 1.0 : prev_cycles / r.avg_cycles;
        std::printf("%-18s | %10.0f | %6.2f / %7.2f | %8.2fx\n", v.label,
                    r.avg_cycles, v.paper_speedup, speedup, step);
        prev_cycles = r.avg_cycles;
    }
    bench::rule(66);
    std::printf("Paper step ratios: 1.66x, 1.38x, 1.45x, 1.48x, 1.02x.\n");
    return 0;
}
