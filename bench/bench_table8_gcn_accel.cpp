/**
 * @file
 * Reproduces paper Table VIII: FlowGNN vs the published I-GCN and
 * AWB-GCN results on Cora, CiteSeer, PubMed, and Reddit with their
 * experiment configuration — a 2-layer GCN, embedding dim 16, no edge
 * embeddings — normalized by DSP count.
 *
 * Reddit is simulated at 1/64 scale with the same average degree; its
 * cycle count is rescaled by 64 (both NT and MP work scale linearly in
 * nodes and edges), as documented in docs/DESIGN.md.
 *
 * I-GCN/AWB-GCN consume the raw sparse node features (~1% dense), so
 * their effective input dimension is ~tens of nonzeros; we model that
 * by truncating our dense stand-in features to 16 dims for this
 * experiment ("pre-encoded features" substitution, see docs/DESIGN.md).
 */
#include "bench_common.h"
#include "perf/accelerators.h"
#include "perf/energy.h"
#include "perf/resources.h"

using namespace flowgnn;

namespace {

/** Truncates node features to the first `dim` columns. */
GraphSample
truncate_features(const GraphSample &s, std::size_t dim)
{
    GraphSample out = s;
    out.node_features = Matrix(s.num_nodes(), dim);
    for (NodeId n = 0; n < s.num_nodes(); ++n)
        for (std::size_t c = 0; c < dim; ++c)
            out.node_features(n, c) = s.node_features(n, c);
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Table VIII — comparison with I-GCN / AWB-GCN (2-layer GCN-16)",
        "Latency normalized by DSPs (x dsps / 4096). The paper's "
        "747-DSP kernel achieves 1.26x avg speedup over I-GCN; our "
        "conservative fp32 DSP model keeps the comparison within an "
        "order of magnitude (analysis in EXPERIMENTS.md).");

    // Moderate-parallelism config for the small-dim GCN kernel,
    // sized near the paper's 747-DSP operating point.
    EngineConfig cfg;
    cfg.p_node = 4;
    cfg.p_edge = 8;
    cfg.p_apply = 8;
    cfg.p_scatter = 8;

    const DatasetKind datasets[] = {
        DatasetKind::kCora, DatasetKind::kCiteSeer, DatasetKind::kPubMed,
        DatasetKind::kReddit};

    std::printf("%-9s | %-8s | %12s | %6s | %12s | %10s | %12s\n",
                "Dataset", "Accel", "latency(us)", "DSPs",
                "norm.latency", "EE(g/kJ)", "vs FlowGNN");
    bench::rule(92);

    double speedup_sum = 0.0, ee_ratio_sum = 0.0;
    int rows = 0;

    for (DatasetKind d : datasets) {
        GraphSample s = truncate_features(make_sample(d, 0), 16);
        Model gcn16 =
            make_model(ModelKind::kGcn16, s.node_dim(), s.edge_dim());
        Engine engine(gcn16, cfg);
        RunResult r = engine.run(s);
        double scale = dataset_spec(d).scale;
        double fg_us = r.latency_ms() * 1e3 * scale;
        std::uint32_t fg_dsps =
            estimate_resources(gcn16, cfg, /*max_nodes=*/4096).dsp;
        double fg_norm = dsp_normalized_latency(fg_us, fg_dsps);
        double fg_ee = graphs_per_kj(Platform::kFpga,
                                     r.latency_ms() * scale);

        const PublishedResult &awb = awbgcn_published(d);
        const PublishedResult &igcn = igcn_published(d);

        std::printf("%-9s | %-8s | %12.3g | %6u | %12.4g | %10.2e | %s\n",
                    dataset_spec(d).name, awb.accelerator,
                    awb.latency_us, awb.dsps,
                    dsp_normalized_latency(awb.latency_us, awb.dsps),
                    awb.ee_graphs_per_kj, "");
        std::printf("%-9s | %-8s | %12.3g | %6u | %12.4g | %10.2e | %s\n",
                    "", igcn.accelerator, igcn.latency_us, igcn.dsps,
                    dsp_normalized_latency(igcn.latency_us, igcn.dsps),
                    igcn.ee_graphs_per_kj, "");

        double speedup = normalized_speedup(fg_us, fg_dsps,
                                            igcn.latency_us, igcn.dsps);
        double ee_ratio = fg_ee / igcn.ee_graphs_per_kj;
        speedup_sum += speedup;
        ee_ratio_sum += ee_ratio;
        ++rows;
        std::printf("%-9s | %-8s | %12.3g | %6u | %12.4g | %10.2e | "
                    "%.2fx faster, %.2fx EE vs I-GCN\n",
                    "", "FlowGNN", fg_us, fg_dsps, fg_norm, fg_ee,
                    speedup, ee_ratio);
        bench::rule(92);
    }
    std::printf("Average DSP-normalized speedup over I-GCN: %.2fx "
                "(paper: 1.26x); average EE ratio: %.2fx (paper: "
                "1.55x).\n",
                speedup_sum / rows, ee_ratio_sum / rows);
    std::printf("Note: Reddit simulated at 1/64 scale, latency "
                "rescaled x64.\n");
    return 0;
}
