/**
 * @file
 * Die-pool scheduling study: makespan and die utilization of a mixed
 * job trace (wide sharded jobs + single-die jobs) under each pool
 * policy, reported two ways per policy:
 *
 *  - modeled: the deterministic cycle-domain schedule simulator
 *    replaying the policy over each task's measured engine cycles —
 *    the number CI can track without timing noise;
 *  - wall clock: the live PoolScheduler running the same trace on
 *    host threads (paused start, so the backlog shape is identical).
 *
 * The trace is built so gang scheduling's head-of-line blocking
 * shows: a 2-wide job leaves dies free that a 3-wide job behind it
 * cannot gang onto, stalling the singles queued after it. Space
 * sharing backfills all of it.
 *
 *   ./bench_pool_scheduling [--scale N] [--json PATH]
 *
 * --json writes a machine-readable record (consumed by CI as a
 * workflow artifact, so the scheduling trajectory is tracked).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "pool/schedule_sim.h"
#include "shard/sharded_engine.h"

namespace {

using namespace flowgnn;

GraphSample
make_workload(NodeId nodes, std::uint64_t seed)
{
    return bench::make_lattice_workload(nodes, 16, seed);
}

struct TraceJob {
    GraphSample sample;
    std::uint32_t width = 1; ///< shards (1 = fast-path single)
};

struct PolicyPoint {
    const char *policy;
    std::uint64_t modeled_makespan = 0;
    double modeled_utilization = 0.0;
    double wall_ms = 0.0;
    std::size_t peak_busy_dies = 0;
    double queue_delay_p95_ms = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t scale = 1;
    std::string json_path;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--scale") && a + 1 < argc)
            scale = static_cast<std::uint32_t>(std::atoi(argv[++a]));
        else if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
    }
    if (scale == 0)
        scale = 1;

    constexpr std::uint32_t kDies = 4;
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;

    // The mixed trace: one 2-wide job (leaves 2 dies free), one 3-wide
    // job (cannot gang onto 2), and two singles stalled behind it
    // under FIFO.
    std::vector<TraceJob> trace;
    trace.push_back({make_workload(36000 * scale, 0x111), 2});
    trace.push_back({make_workload(3000 * scale, 0x222), 3});
    trace.push_back({make_workload(12000 * scale, 0x333), 1});
    trace.push_back({make_workload(12000 * scale, 0x444), 1});

    bench::banner(
        "die-pool scheduling — mixed trace, FIFO-gang vs space-share",
        "Modeled makespan from the cycle-domain schedule simulator "
        "over measured task cycles; wall clock from the live pool. "
        "Gang scheduling idles dies behind a head-of-line job that "
        "does not fit; space sharing backfills them.");

    // ---- Measured task cycles (isolated runs, also the answers'
    // reference) feed the simulator. ----
    Engine single(model, cfg);
    std::vector<SimJob> sim_trace;
    std::size_t total_tasks = 0;
    for (const TraceJob &job : trace) {
        SimJob sim;
        if (job.width == 1) {
            sim.task_cycles.push_back(
                single.run(job.sample).stats.total_cycles);
        } else {
            ShardConfig shard;
            shard.num_shards = job.width;
            ShardedRunResult r =
                ShardedEngine(model, cfg, shard).run(job.sample);
            for (const ShardInfo &info : r.shards)
                sim.task_cycles.push_back(info.stats.total_cycles +
                                          info.comm_cycles);
        }
        total_tasks += sim.task_cycles.size();
        sim_trace.push_back(std::move(sim));
    }
    std::printf("trace: %zu jobs / %zu tasks on %u dies\n\n",
                trace.size(), total_tasks, kDies);

    const PoolPolicy policies[] = {PoolPolicy::kFifoGang,
                                   PoolPolicy::kSpaceShare,
                                   PoolPolicy::kPriority};
    std::vector<PolicyPoint> points;
    for (PoolPolicy policy : policies) {
        PolicyPoint p;
        p.policy = pool_policy_name(policy);

        SimResult sim =
            simulate_pool_schedule(sim_trace, kDies, policy);
        p.modeled_makespan = sim.makespan;
        p.modeled_utilization = sim.utilization();

        PoolConfig pool;
        pool.num_dies = kDies;
        pool.policy = policy;
        pool.start_paused = true;
        PoolScheduler scheduler(model, cfg, pool);
        std::vector<std::future<ShardedRunResult>> sharded;
        std::vector<std::future<RunResult>> singles;
        for (const TraceJob &job : trace) {
            if (job.width == 1) {
                singles.push_back(scheduler.submit(job.sample));
            } else {
                ShardConfig shard;
                shard.num_shards = job.width;
                sharded.push_back(
                    scheduler.submit_sharded(job.sample, shard));
            }
        }
        auto begin = std::chrono::steady_clock::now();
        scheduler.start();
        scheduler.drain();
        auto end = std::chrono::steady_clock::now();
        p.wall_ms =
            std::chrono::duration<double, std::milli>(end - begin)
                .count();
        PoolStats st = scheduler.stats();
        p.peak_busy_dies = st.peak_busy_dies;
        p.queue_delay_p95_ms = st.queue_delay_p95_ms;
        for (auto &f : sharded)
            f.get();
        for (auto &f : singles)
            f.get();
        points.push_back(p);
    }

    std::printf("%-12s %18s %10s %10s %6s %12s\n", "policy",
                "modeled makespan", "die util", "wall ms", "peak",
                "qdelay p95");
    bench::rule(74);
    for (const PolicyPoint &p : points)
        std::printf("%-12s %18llu %9.1f%% %10.1f %6zu %10.2fms\n",
                    p.policy,
                    static_cast<unsigned long long>(p.modeled_makespan),
                    100.0 * p.modeled_utilization, p.wall_ms,
                    p.peak_busy_dies, p.queue_delay_p95_ms);
    bench::rule(74);
    double speedup =
        static_cast<double>(points[0].modeled_makespan) /
        static_cast<double>(points[1].modeled_makespan);
    std::printf("space-share vs fifo-gang: %.2fx modeled makespan, "
                "%.2fx wall clock\n",
                speedup, points[0].wall_ms / points[1].wall_ms);
    if (std::thread::hardware_concurrency() < kDies)
        std::printf("note: %u host core(s) timeshare the %u die "
                    "threads — wall clock tracks total work, not "
                    "schedule shape; trust the modeled column here.\n",
                    std::thread::hardware_concurrency(), kDies);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"pool_scheduling\",\n"
           << "  \"dies\": " << kDies << ",\n"
           << "  \"jobs\": " << trace.size() << ",\n"
           << "  \"tasks\": " << total_tasks << ",\n"
           << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const PolicyPoint &p = points[i];
            os << "    {\"policy\": \"" << p.policy
               << "\", \"modeled_makespan\": " << p.modeled_makespan
               << ", \"modeled_utilization\": "
               << p.modeled_utilization
               << ", \"wall_ms\": " << p.wall_ms
               << ", \"peak_busy_dies\": " << p.peak_busy_dies
               << ", \"queue_delay_p95_ms\": " << p.queue_delay_p95_ms
               << "}" << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
