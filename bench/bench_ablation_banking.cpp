/**
 * @file
 * Ablation: what would pre-processing buy? (paper Sec. VI-E future
 * work on workload imbalance).
 *
 * Compares FlowGNN's zero-pre-processing modular destination banking
 * against a greedy least-loaded assignment that requires a pre-pass
 * over the edge list, reporting both the static imbalance metric and
 * the measured end-to-end latency. The paper's design bet is that the
 * modular hash is good enough (Table VII shows <9% imbalance); this
 * bench quantifies how little the pre-processing would win.
 */
#include "bench_common.h"
#include "graph/partition.h"

using namespace flowgnn;

namespace {

double
avg_latency(const Model &model, DatasetKind dataset, std::size_t count,
            BankPolicy policy)
{
    EngineConfig cfg;
    cfg.bank_policy = policy;
    return bench::run_stream(model, cfg, dataset, count).avg_latency_ms;
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation — modular vs greedy-balanced destination banking",
        "Modulo = zero pre-processing (FlowGNN's design point); "
        "balanced = greedy least-loaded pre-pass (future-work "
        "ablation). Pedge = 4.");

    std::printf("%-9s | %-7s | %20s | %23s | %8s\n", "Dataset", "Model",
                "imbalance mod/bal (%)", "latency mod/bal (ms)", "gain");
    bench::rule(84);

    struct Case {
        DatasetKind dataset;
        ModelKind model;
        std::size_t graphs;
    };
    const Case cases[] = {
        {DatasetKind::kMolHiv, ModelKind::kGcn, 48},
        {DatasetKind::kMolHiv, ModelKind::kGin, 48},
        {DatasetKind::kHep, ModelKind::kGcn, 24},
        {DatasetKind::kCora, ModelKind::kGcn, 1},
    };

    for (const auto &c : cases) {
        GraphSample probe = make_sample(c.dataset, 0);
        Model model =
            make_model(c.model, probe.node_dim(), probe.edge_dim());

        // Static imbalance, averaged over the stream.
        double imb_mod = 0.0, imb_bal = 0.0;
        SampleStream stream(c.dataset, c.graphs);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            GraphSample s = stream.next();
            imb_mod += workload_imbalance(s.graph, 4);
            imb_bal += workload_imbalance(bank_edge_counts(
                s.graph, balanced_bank_assignment(s.graph, 4), 4));
        }
        imb_mod = 100.0 * imb_mod / stream.size();
        imb_bal = 100.0 * imb_bal / stream.size();

        double lat_mod = avg_latency(model, c.dataset, c.graphs,
                                     BankPolicy::kModulo);
        double lat_bal = avg_latency(model, c.dataset, c.graphs,
                                     BankPolicy::kGreedyBalanced);

        std::printf(
            "%-9s | %-7s | %8.2f / %9.2f | %9.4f / %11.4f | %6.2f%%\n",
            dataset_spec(c.dataset).name, model_name(c.model), imb_mod,
            imb_bal, lat_mod, lat_bal,
            100.0 * (lat_mod - lat_bal) / lat_mod);
    }
    bench::rule(84);
    std::printf("Expected outcome: balanced banking removes most of the "
                "residual imbalance but buys only a few percent of "
                "latency — validating the zero-pre-processing design.\n");
    return 0;
}
