/**
 * @file
 * Reproduces paper Table III: per-model resource usage on the Alveo
 * U50 (2 NT units, 4 MP units, 300 MHz), using the resource estimator
 * in place of Vivado place-and-route.
 */
#include "bench_common.h"
#include "perf/resources.h"

using namespace flowgnn;

namespace {

struct PaperRow {
    ModelKind kind;
    ResourceUsage paper;
};

// Table III published values.
const PaperRow kPaper[] = {
    {ModelKind::kGin, {1741, 262863, 166098, 204}},
    {ModelKind::kGcn, {1048, 229521, 192328, 185}},
    {ModelKind::kPna, {2499, 205641, 203125, 767}},
    {ModelKind::kGat, {2488, 148750, 134439, 335}},
    {ModelKind::kDgn, {1563, 200602, 156681, 462}},
};

} // namespace

int
main()
{
    bench::banner("Table III — resource usage on Xilinx Alveo U50",
                  "Estimator model (no Vivado); paper values alongside. "
                  "Config: 2 NT / 4 MP units @ 300 MHz.");

    EngineConfig cfg; // paper defaults

    std::printf("%-7s | %22s | %22s | %22s | %18s\n", "Model",
                "DSP (paper/est)", "LUT (paper/est)", "FF (paper/est)",
                "BRAM (paper/est)");
    bench::rule(104);
    for (const auto &row : kPaper) {
        Model model = make_model(row.kind, 9, 3);
        ResourceUsage est = estimate_resources(model, cfg);
        std::printf("%-7s | %9u / %9u | %9u / %9u | %9u / %9u | %7u / %7u\n",
                    model_name(row.kind), row.paper.dsp, est.dsp,
                    row.paper.lut, est.lut, row.paper.ff, est.ff,
                    row.paper.bram, est.bram);
        if (!fits_u50(est))
            std::printf("  WARNING: estimate exceeds U50 resources!\n");
    }
    bench::rule(104);
    std::printf("Available on U50: DSP %u, LUT %u, FF %u, BRAM %u\n",
                kAlveoU50.dsp, kAlveoU50.lut, kAlveoU50.ff,
                kAlveoU50.bram);
    return 0;
}
