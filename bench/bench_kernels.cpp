/**
 * @file
 * google-benchmark microbenchmarks of the engine's primitive kernels:
 * FIFO traffic, input-stationary accumulation, aggregator updates,
 * CSR construction from the streamed COO list, and whole-engine runs.
 * These quantify simulator throughput (host-side), complementing the
 * modeled accelerator cycle counts.
 */
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/fifo.h"
#include "datasets/dataset.h"
#include "nn/aggregator.h"

namespace flowgnn {
namespace {

void
BM_FifoPushPop(benchmark::State &state)
{
    Fifo<std::uint64_t> q(64);
    std::uint64_t v = 0;
    for (auto _ : state) {
        q.push(++v);
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_FifoPushPop);

void
BM_LinearAccumulate(benchmark::State &state)
{
    const std::size_t dim = state.range(0);
    Rng rng(1);
    Linear lin(dim, dim);
    lin.init_glorot(rng);
    Vec x(dim, 0.5f);
    for (auto _ : state) {
        Vec acc = lin.bias();
        lin.accumulate(acc, x, 0, dim);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_LinearAccumulate)->Arg(16)->Arg(64)->Arg(100);

void
BM_AggregatorAccumulate(benchmark::State &state)
{
    auto kind = static_cast<AggregatorKind>(state.range(0));
    Aggregator agg(kind, 100);
    std::vector<float> st(agg.state_dim());
    agg.init(st.data());
    Vec msg(100, 0.25f);
    for (auto _ : state) {
        agg.accumulate(st.data(), msg.data());
        benchmark::DoNotOptimize(st.data());
    }
}
BENCHMARK(BM_AggregatorAccumulate)
    ->Arg(static_cast<int>(AggregatorKind::kSum))
    ->Arg(static_cast<int>(AggregatorKind::kPna));

void
BM_CsrBuildFromStream(benchmark::State &state)
{
    GraphSample s = make_sample(DatasetKind::kHep, 0);
    for (auto _ : state) {
        CsrGraph csr(s.graph);
        benchmark::DoNotOptimize(csr.num_edges());
    }
    state.SetItemsProcessed(state.iterations() * s.num_edges());
}
BENCHMARK(BM_CsrBuildFromStream);

void
BM_EngineMolHivGraph(benchmark::State &state)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    auto kind = static_cast<ModelKind>(state.range(0));
    Model model = make_model(kind, s.node_dim(), s.edge_dim());
    Engine engine(model, {});
    for (auto _ : state) {
        RunResult r = engine.run(s);
        benchmark::DoNotOptimize(r.stats.total_cycles);
    }
}
BENCHMARK(BM_EngineMolHivGraph)
    ->Arg(static_cast<int>(ModelKind::kGcn))
    ->Arg(static_cast<int>(ModelKind::kGin))
    ->Arg(static_cast<int>(ModelKind::kGat));

void
BM_ReferenceMolHivGraph(benchmark::State &state)
{
    GraphSample s = make_sample(DatasetKind::kMolHiv, 0);
    Model model = make_model(ModelKind::kGin, s.node_dim(), s.edge_dim());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(s));
}
BENCHMARK(BM_ReferenceMolHivGraph);

} // namespace
} // namespace flowgnn

BENCHMARK_MAIN();
