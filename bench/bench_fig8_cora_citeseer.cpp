/**
 * @file
 * Reproduces paper Fig. 8: per-graph latency on the single-graph
 * citation datasets Cora and CiteSeer for all six models, FlowGNN vs
 * CPU and GPU at batch size 1 (batching is meaningless for a single
 * graph).
 */
#include "bench_common.h"
#include "perf/baselines.h"

using namespace flowgnn;

namespace {

// Fig. 8 published FlowGNN latencies (ms), [dataset][model] with
// models ordered GIN, GIN+VN, GCN, GAT, PNA, DGN.
const double kPaperFlowGnn[2][6] = {
    {2.11, 2.50, 2.33, 0.84, 2.55, 2.03}, // Cora
    {2.42, 2.89, 2.70, 0.92, 3.02, 2.27}, // CiteSeer
};
const double kPaperGpuSpeedup[2][6] = {
    {1.7, 1.9, 2.2, 37.8, 3.2, 127.4}, // Cora: GPU/FlowGNN
    {1.5, 1.7, 1.9, 69.6, 2.7, 98.7},  // CiteSeer
};

void
run_dataset(DatasetKind dataset, std::size_t row)
{
    GraphSample sample = make_sample(dataset, 0);
    std::printf("--- %s (%u nodes, %zu edges) ---\n",
                dataset_spec(dataset).name, sample.num_nodes(),
                sample.num_edges());
    std::printf("%-7s | %19s | %8s | %8s | %18s\n", "Model",
                "FlowGNN ms (pap/meas)", "CPU ms", "GPU ms",
                "GPU/FlowGNN (pap/meas)");
    bench::rule(84);

    std::size_t col = 0;
    for (ModelKind kind : kPaperModels) {
        Model model =
            make_model(kind, sample.node_dim(), sample.edge_dim());
        Engine engine(model, {});
        RunResult r = engine.run(sample);
        double fg_ms = r.latency_ms();

        GraphSample prepared = model.prepare(sample);
        double cpu = CpuModel(kind).latency_ms(model, prepared);
        double gpu = GpuModel(kind).latency_ms(model, prepared, 1);

        std::printf(
            "%-7s | %6.2f / %10.2f | %8.2f | %8.2f | %6.1f / %9.1f\n",
            model_name(kind), kPaperFlowGnn[row][col], fg_ms, cpu, gpu,
            kPaperGpuSpeedup[row][col], gpu / fg_ms);
        ++col;
    }
    bench::rule(84);
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 8 — single-graph latency on Cora and CiteSeer (ms)",
        "Batch size 1 on every platform (single input graph). FlowGNN "
        "outperforms CPU and GPU on all six models in the paper.");
    run_dataset(DatasetKind::kCora, 0);
    run_dataset(DatasetKind::kCiteSeer, 1);
    return 0;
}
