/**
 * @file
 * Multi-die shard-scaling study: modeled-cycle speedup of sharded
 * execution vs shard count on a large synthetic graph, per shard
 * strategy. This is the scale-out counterpart of the paper's
 * single-die latency experiments — the workload the paper defers in
 * Sec. VI-E (graphs far larger than one die's buffers).
 *
 *   ./bench_shard_scaling [--nodes N] [--model gcn16|gcn|gin]
 *                         [--json PATH] [--sweep-nodes N]
 *                         [--sweep-json PATH] [--no-sweep]
 *                         [--graph-file PATH] [--strategies a,b,..]
 *                         [--shards 1,2,4,8] [--modes halo,ghost]
 *                         [--restream N] [--restream-json PATH]
 *
 * --json writes a machine-readable record of every point (consumed by
 * CI as a workflow artifact, so the bench trajectory is tracked).
 *
 * --modes runs the scaling section per ShardMode — the halo-vs-ghost
 * head-to-head is the default. Every point reports the peak per-die
 * resident footprint next to cycles and replication, so the table
 * shows both what sharding buys in capacity and what it costs (halo)
 * or earns (ghost) in modeled time. The P=1 baseline is mode-
 * independent and runs once per strategy.
 *
 * --restream N applies N restreaming passes (Nishimura & Ugander) to
 * every streaming-partitioned point. The separate restreaming study
 * (always in synthetic mode, with --restream-json in file mode too)
 * sweeps pass count for LDG/Fennel/HDRF on a Barabási–Albert graph —
 * partition-only, no engine runs — and reports how the cut decays.
 *
 * --graph-file replaces the synthetic ring lattice with a graph
 * loaded from disk (FGNB binary / SNAP text / OGB CSV, see src/io) —
 * the path that runs the strategy sweep on real edge lists, including
 * the full-scale Reddit-class file written by flowgnn_make_reddit.
 * Since on-disk graphs are usually power-law, the default strategy
 * set switches to contiguous + fennel there; --strategies overrides
 * either default, and --shards trims the shard-count ladder (a
 * power-law graph's 2-hop closures saturate, so each P-shard point
 * costs ~P full-graph runs).
 *
 * The second section is the strategy x graph-family sweep behind the
 * streaming partitioners: every ShardStrategy on a shuffled ring
 * (locality exists, ids are meaningless), a Barabási–Albert power-law
 * graph, and an R-MAT multigraph, at P in {4, 8}, reporting cut
 * fraction, load imbalance, replication, and modeled multi-die
 * latency. --sweep-json writes it as a separate machine-readable
 * artifact (also uploaded by CI).
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "io/load.h"
#include "shard/sharded_engine.h"
#include "tensor/rng.h"

namespace {

using namespace flowgnn;

GraphSample
make_workload(NodeId nodes, std::size_t node_dim)
{
    return bench::make_lattice_workload(nodes, node_dim, 0xB16B00);
}

struct Point {
    const char *strategy;
    const char *mode;
    std::uint32_t shards;
    std::uint64_t cycles;
    std::uint64_t comm_cycles;
    std::uint64_t resident_words; ///< peak per-die footprint
    double speedup;
    double cut_fraction;
    double replication;
};

/** Largest per-die resident footprint in one run's breakdown. */
std::uint64_t
peak_resident(const ShardedRunResult &r)
{
    std::uint64_t peak = 0;
    for (const ShardInfo &info : r.shards)
        peak = std::max(peak, info.resident_words);
    return peak;
}

struct SweepPoint {
    const char *strategy;
    std::uint32_t shards;
    double cut_fraction;
    double load_imbalance; ///< max owned / ideal share
    double replication;
    std::uint64_t cycles;
    std::uint64_t comm_cycles;
    double speedup; ///< vs the same graph on one die
};

struct SweepFamily {
    const char *family;
    GraphSample sample;
    std::uint64_t base_cycles = 0;
    std::vector<SweepPoint> points;
};

using bench::with_features;

/** Comma-separated list -> values, via one item parser. */
template <typename T, typename Parse>
std::vector<T>
parse_list(const char *arg, Parse parse)
{
    std::vector<T> out;
    std::string item;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!item.empty())
                out.push_back(parse(item));
            item.clear();
            if (*p == '\0')
                break;
        } else {
            item += *p;
        }
    }
    return out;
}

/** Most-loaded die's owned nodes over the ideal share, read from the
 * run's per-die breakdown (dropped empty slices own zero nodes and
 * cannot be the max). */
double
owned_imbalance(const ShardedRunResult &r, NodeId num_nodes,
                std::uint32_t shards)
{
    std::size_t max_owned = 0;
    for (const ShardInfo &info : r.shards)
        max_owned = std::max(max_owned, info.owned_nodes);
    return static_cast<double>(max_owned) /
           (static_cast<double>(num_nodes) / shards);
}

} // namespace

int
main(int argc, char **argv)
{
    NodeId nodes = 120000;
    NodeId sweep_nodes = 50000;
    bool run_sweep = true;
    std::string model_name_arg = "gcn16";
    std::string json_path;
    std::string sweep_json_path;
    std::string graph_file;
    std::string restream_json_path;
    std::uint32_t restream_passes = 0;
    std::vector<ShardStrategy> strategies;
    std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
    std::vector<ShardMode> modes = {ShardMode::kHaloReplication,
                                    ShardMode::kGhostExchange};
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--nodes") && a + 1 < argc)
            nodes = static_cast<NodeId>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--sweep-nodes") && a + 1 < argc)
            sweep_nodes = static_cast<NodeId>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--no-sweep"))
            run_sweep = false;
        else if (!std::strcmp(argv[a], "--model") && a + 1 < argc)
            model_name_arg = argv[++a];
        else if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
        else if (!std::strcmp(argv[a], "--sweep-json") && a + 1 < argc)
            sweep_json_path = argv[++a];
        else if (!std::strcmp(argv[a], "--graph-file") && a + 1 < argc)
            graph_file = argv[++a];
        else if (!std::strcmp(argv[a], "--strategies") && a + 1 < argc) {
            try {
                strategies = parse_list<ShardStrategy>(
                    argv[++a], [](const std::string &s) {
                        return shard_strategy_from_name(s);
                    });
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 1;
            }
        }
        else if (!std::strcmp(argv[a], "--shards") && a + 1 < argc)
            shard_counts = parse_list<std::uint32_t>(
                argv[++a], [](const std::string &s) {
                    return static_cast<std::uint32_t>(
                        std::atoll(s.c_str()));
                });
        else if (!std::strcmp(argv[a], "--modes") && a + 1 < argc) {
            try {
                modes = parse_list<ShardMode>(
                    argv[++a], [](const std::string &s) {
                        if (s == "halo")
                            return ShardMode::kHaloReplication;
                        if (s == "ghost")
                            return ShardMode::kGhostExchange;
                        throw std::invalid_argument(
                            "--modes entries must be halo or ghost");
                    });
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 1;
            }
        }
        else if (!std::strcmp(argv[a], "--restream") && a + 1 < argc)
            restream_passes = static_cast<std::uint32_t>(
                std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--restream-json") && a + 1 < argc)
            restream_json_path = argv[++a];
    }
    for (std::uint32_t shards : shard_counts)
        if (shards == 0) { // also what atoll turns a typo into
            std::fprintf(stderr,
                         "error: --shards entries must be >= 1\n");
            return 1;
        }
    // Ascending, so the P=1 baseline (when present) runs before the
    // points whose speedup is computed against it.
    std::sort(shard_counts.begin(), shard_counts.end());
    if (strategies.empty())
        strategies = graph_file.empty()
                         ? std::vector<ShardStrategy>{
                               ShardStrategy::kContiguous,
                               ShardStrategy::kModulo}
                         : std::vector<ShardStrategy>{
                               ShardStrategy::kContiguous,
                               ShardStrategy::kFennel};
    ModelKind kind = ModelKind::kGcn16;
    if (model_name_arg == "gcn")
        kind = ModelKind::kGcn;
    else if (model_name_arg == "gin")
        kind = ModelKind::kGin;

    constexpr std::size_t kNodeDim = 16;
    GraphSample sample;
    if (graph_file.empty()) {
        sample = make_workload(nodes, kNodeDim);
    } else {
        LoadOptions load;
        load.node_dim = kNodeDim;
        try {
            sample = load_graph_sample(graph_file, load);
        } catch (const GraphFileError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    Model model = make_model(kind, kNodeDim, 0);

    bench::banner(
        "multi-die shard scaling",
        graph_file.empty()
            ? "Modeled cycles for one large graph split across P dies "
              "(ring lattice, k=2: ids carry locality). Contiguous "
              "shards cut only die boundaries; the modulo hash ignores "
              "locality and replicates nearly everything — the cut "
              "metrics predict which one scales."
            : "Modeled cycles for one on-disk graph split across P "
              "dies. Loaded via flowgnn::io — the sharded stack runs "
              "against storage, not a generator.");
    if (!graph_file.empty())
        std::printf("graph file: %s\n", graph_file.c_str());
    std::printf("graph: %u nodes / %zu edges, model %s, %u-hop halo\n\n",
                sample.graph.num_nodes, sample.num_edges(),
                model_name(kind), ShardedEngine::message_hops(model));

    std::printf("%-12s %-6s %7s %14s %12s %14s %9s %8s %8s\n",
                "strategy", "mode", "shards", "cycles", "comm",
                "resident", "speedup", "cut", "repl");
    bench::rule(96);

    std::vector<Point> points;
    for (ShardStrategy strategy : strategies) {
        // P=1 runs the identical whole-graph path in both modes, so
        // the (expensive, on Reddit-class files) baseline runs once
        // per strategy and its row is reused across modes.
        std::uint64_t base_cycles = 0;
        bool have_base = false;
        Point base_point{};
        for (ShardMode mode : modes) {
            for (std::uint32_t shards : shard_counts) {
                Point p;
                if (shards == 1 && have_base) {
                    p = base_point;
                } else {
                    ShardConfig cfg;
                    cfg.num_shards = shards;
                    cfg.strategy = strategy;
                    cfg.mode = mode;
                    cfg.restream_passes = restream_passes;
                    ShardedRunResult r =
                        ShardedEngine(model, {}, cfg).run(sample);
                    p.strategy = shard_strategy_name(strategy);
                    p.shards = shards;
                    p.cycles = r.stats.total_cycles;
                    p.comm_cycles = r.stats.comm_cycles;
                    p.resident_words = peak_resident(r);
                    p.cut_fraction = // 0 for edgeless graphs, not NaN
                        sample.num_edges() == 0
                            ? 0.0
                            : static_cast<double>(r.cut_edges) /
                                  static_cast<double>(
                                      sample.num_edges());
                    p.replication = r.replication_factor;
                    if (shards == 1) {
                        base_cycles = p.cycles;
                        base_point = p;
                        have_base = true;
                    }
                }
                p.mode = shard_mode_name(mode);
                // 0 when the --shards list omits the 1-die baseline.
                p.speedup = base_cycles == 0
                                ? 0.0
                                : static_cast<double>(base_cycles) /
                                      static_cast<double>(p.cycles);
                points.push_back(p);
                std::printf(
                    "%-12s %-6s %7u %14llu %12llu %14llu %8.2fx "
                    "%8.3f %8.3f\n",
                    p.strategy, p.mode, p.shards,
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.comm_cycles),
                    static_cast<unsigned long long>(p.resident_words),
                    p.speedup, p.cut_fraction, p.replication);
            }
            bench::rule(96);
        }
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"shard_scaling\",\n"
           << "  \"graph\": \""
           << (graph_file.empty() ? "ring-lattice-k2" : graph_file)
           << "\",\n"
           << "  \"nodes\": " << sample.graph.num_nodes << ",\n"
           << "  \"edges\": " << sample.num_edges() << ",\n"
           << "  \"model\": \"" << model_name(kind) << "\",\n"
           << "  \"restream\": " << restream_passes << ",\n"
           << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            os << "    {\"strategy\": \"" << p.strategy
               << "\", \"mode\": \"" << p.mode
               << "\", \"shards\": " << p.shards
               << ", \"cycles\": " << p.cycles
               << ", \"comm_cycles\": " << p.comm_cycles
               << ", \"resident_words\": " << p.resident_words
               << ", \"speedup\": " << p.speedup
               << ", \"cut_fraction\": " << p.cut_fraction
               << ", \"replication\": " << p.replication << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    // ---- Restreaming study: partition-only, so it is cheap even on
    // big files, but file mode still gates it behind --restream-json
    // (multi-pass Fennel over 10^8 edges is minutes, not seconds). ----
    if (graph_file.empty() || !restream_json_path.empty()) {
        bench::banner(
            "restreaming partitioners (Nishimura & Ugander)",
            "Re-running a streaming partitioner with the previous "
            "assignment as the tie-break prior lets early vertices see "
            "where their late neighbors landed. Cut fraction vs pass "
            "count for LDG/Fennel/HDRF at P = 8; pass 0 is the plain "
            "one-shot stream.");

        const CooGraph *restream_graph;
        CooGraph ba_graph;
        const char *restream_graph_name;
        if (graph_file.empty()) {
            Rng ba_rng(0xB16B01);
            ba_graph = make_barabasi_albert(sweep_nodes, 4, ba_rng);
            restream_graph = &ba_graph;
            restream_graph_name = "barabasi-albert";
        } else {
            restream_graph = &sample.graph;
            restream_graph_name = graph_file.c_str();
        }

        struct RestreamPoint {
            const char *strategy;
            std::uint32_t passes;
            double cut_fraction;
        };
        const ShardStrategy restream_strategies[] = {
            ShardStrategy::kLdg, ShardStrategy::kFennel,
            ShardStrategy::kHdrf};
        const std::size_t n_edges = restream_graph->edges.size();
        std::vector<RestreamPoint> restream_points;
        std::printf("graph: %s, %u nodes / %zu edges, P = 8\n\n",
                    restream_graph_name, restream_graph->num_nodes,
                    n_edges);
        std::printf("%-12s %7s %10s %10s\n", "strategy", "passes",
                    "cut", "vs pass0");
        bench::rule(44);
        for (ShardStrategy strategy : restream_strategies) {
            double pass0_cut = 0.0;
            for (std::uint32_t passes = 0; passes <= 3; ++passes) {
                ShardConfig cfg;
                cfg.num_shards = 8;
                cfg.strategy = strategy;
                cfg.restream_passes = passes;
                std::vector<std::uint32_t> assignment =
                    shard_plan_assignment(*restream_graph, cfg);
                RestreamPoint p;
                p.strategy = shard_strategy_name(strategy);
                p.passes = passes;
                p.cut_fraction =
                    n_edges == 0
                        ? 0.0
                        : static_cast<double>(shard_cut_edges(
                              *restream_graph, assignment)) /
                              static_cast<double>(n_edges);
                if (passes == 0)
                    pass0_cut = p.cut_fraction;
                restream_points.push_back(p);
                std::printf("%-12s %7u %10.4f %9.3fx\n", p.strategy,
                            p.passes, p.cut_fraction,
                            pass0_cut == 0.0
                                ? 1.0
                                : p.cut_fraction / pass0_cut);
            }
            bench::rule(44);
        }

        if (!restream_json_path.empty()) {
            std::ofstream os(restream_json_path);
            os << "{\n  \"bench\": \"restream\",\n"
               << "  \"graph\": \"" << restream_graph_name << "\",\n"
               << "  \"nodes\": " << restream_graph->num_nodes << ",\n"
               << "  \"edges\": " << n_edges << ",\n"
               << "  \"shards\": 8,\n  \"points\": [\n";
            for (std::size_t i = 0; i < restream_points.size(); ++i) {
                const RestreamPoint &p = restream_points[i];
                os << "    {\"strategy\": \"" << p.strategy
                   << "\", \"passes\": " << p.passes
                   << ", \"cut_fraction\": " << p.cut_fraction << "}"
                   << (i + 1 < restream_points.size() ? "," : "")
                   << "\n";
            }
            os << "  ]\n}\n";
            std::printf("\nwrote %s\n", restream_json_path.c_str());
        }
    }

    // The synthetic family sweep says nothing about an on-disk graph;
    // file mode is the scaling section only.
    if (!run_sweep || !graph_file.empty())
        return 0;

    // ---- Strategy x graph-family sweep ---------------------------------
    bench::banner(
        "shard-strategy x graph-family sweep",
        "Every ShardStrategy on three structural families at P = 4 "
        "and 8. On power-law graphs (Barabási–Albert, R-MAT) BFS "
        "ranks order poorly, so the streaming partitioners "
        "(LDG/Fennel/HDRF) must win the cut; on the shuffled ring "
        "BFS renumbering stays the right choice.");

    Rng family_rng(0xB16B00);
    std::vector<SweepFamily> families;
    {
        SweepFamily ring;
        ring.family = "ring-shuffled";
        ring.sample = with_features(
            permute_node_ids(make_ring_lattice(sweep_nodes, 2),
                             family_rng),
            kNodeDim, 0x5EE1);
        families.push_back(std::move(ring));

        SweepFamily ba;
        ba.family = "barabasi-albert";
        ba.sample = with_features(
            make_barabasi_albert(sweep_nodes, 4, family_rng), kNodeDim,
            0x5EE2);
        families.push_back(std::move(ba));

        NodeId rmat_nodes = 1;
        while (rmat_nodes < sweep_nodes)
            rmat_nodes <<= 1;
        SweepFamily rmat;
        rmat.family = "rmat";
        rmat.sample = with_features(
            make_rmat(rmat_nodes, std::size_t(rmat_nodes) * 8,
                      family_rng),
            kNodeDim, 0x5EE3);
        families.push_back(std::move(rmat));
    }

    const ShardStrategy sweep_strategies[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };
    const std::uint32_t sweep_shards[] = {4, 8};

    for (SweepFamily &family : families) {
        ShardConfig one;
        one.num_shards = 1;
        family.base_cycles = ShardedEngine(model, {}, one)
                                 .run(family.sample)
                                 .stats.total_cycles;

        std::printf("\n%s: %u nodes / %zu edges (1 die: %llu cycles)\n",
                    family.family, family.sample.graph.num_nodes,
                    family.sample.num_edges(),
                    static_cast<unsigned long long>(family.base_cycles));
        std::printf("%-16s %7s %8s %8s %8s %14s %12s %9s\n", "strategy",
                    "shards", "cut", "maxload", "repl", "cycles",
                    "comm", "speedup");
        bench::rule(90);
        for (std::uint32_t shards : sweep_shards) {
            for (ShardStrategy strategy : sweep_strategies) {
                ShardConfig cfg;
                cfg.num_shards = shards;
                cfg.strategy = strategy;
                ShardedRunResult r =
                    ShardedEngine(model, {}, cfg).run(family.sample);
                SweepPoint p;
                p.strategy = shard_strategy_name(strategy);
                p.shards = shards;
                p.cut_fraction =
                    static_cast<double>(r.cut_edges) /
                    static_cast<double>(family.sample.num_edges());
                p.load_imbalance = owned_imbalance(
                    r, family.sample.graph.num_nodes, shards);
                p.replication = r.replication_factor;
                p.cycles = r.stats.total_cycles;
                p.comm_cycles = r.stats.comm_cycles;
                p.speedup =
                    static_cast<double>(family.base_cycles) /
                    static_cast<double>(r.stats.total_cycles);
                family.points.push_back(p);
                std::printf(
                    "%-16s %7u %8.4f %8.3f %8.3f %14llu %12llu %8.2fx\n",
                    p.strategy, p.shards, p.cut_fraction,
                    p.load_imbalance, p.replication,
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.comm_cycles),
                    p.speedup);
            }
            bench::rule(90);
        }
    }

    if (!sweep_json_path.empty()) {
        std::ofstream os(sweep_json_path);
        os << "{\n  \"bench\": \"shard_strategy_sweep\",\n"
           << "  \"model\": \"" << model_name(kind) << "\",\n"
           << "  \"families\": [\n";
        for (std::size_t f = 0; f < families.size(); ++f) {
            const SweepFamily &family = families[f];
            os << "    {\"family\": \"" << family.family
               << "\", \"nodes\": " << family.sample.graph.num_nodes
               << ", \"edges\": " << family.sample.num_edges()
               << ", \"base_cycles\": " << family.base_cycles
               << ",\n     \"points\": [\n";
            for (std::size_t i = 0; i < family.points.size(); ++i) {
                const SweepPoint &p = family.points[i];
                os << "      {\"strategy\": \"" << p.strategy
                   << "\", \"shards\": " << p.shards
                   << ", \"cut_fraction\": " << p.cut_fraction
                   << ", \"load_imbalance\": " << p.load_imbalance
                   << ", \"replication\": " << p.replication
                   << ", \"cycles\": " << p.cycles
                   << ", \"comm_cycles\": " << p.comm_cycles
                   << ", \"speedup\": " << p.speedup << "}"
                   << (i + 1 < family.points.size() ? "," : "") << "\n";
            }
            os << "     ]}" << (f + 1 < families.size() ? "," : "")
               << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s\n", sweep_json_path.c_str());
    }
    return 0;
}
