/**
 * @file
 * Multi-die shard-scaling study: modeled-cycle speedup of sharded
 * execution vs shard count on a large synthetic graph, per shard
 * strategy. This is the scale-out counterpart of the paper's
 * single-die latency experiments — the workload the paper defers in
 * Sec. VI-E (graphs far larger than one die's buffers).
 *
 *   ./bench_shard_scaling [--nodes N] [--model gcn16|gcn|gin]
 *                         [--json PATH]
 *
 * --json writes a machine-readable record of every point (consumed by
 * CI as a workflow artifact, so the bench trajectory is tracked).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "shard/sharded_engine.h"
#include "tensor/rng.h"

namespace {

using namespace flowgnn;

GraphSample
make_workload(NodeId nodes, std::size_t node_dim)
{
    return bench::make_lattice_workload(nodes, node_dim, 0xB16B00);
}

struct Point {
    const char *strategy;
    std::uint32_t shards;
    std::uint64_t cycles;
    std::uint64_t comm_cycles;
    double speedup;
    double cut_fraction;
    double replication;
};

} // namespace

int
main(int argc, char **argv)
{
    NodeId nodes = 120000;
    std::string model_name_arg = "gcn16";
    std::string json_path;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--nodes") && a + 1 < argc)
            nodes = static_cast<NodeId>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--model") && a + 1 < argc)
            model_name_arg = argv[++a];
        else if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
    }
    ModelKind kind = ModelKind::kGcn16;
    if (model_name_arg == "gcn")
        kind = ModelKind::kGcn;
    else if (model_name_arg == "gin")
        kind = ModelKind::kGin;

    constexpr std::size_t kNodeDim = 16;
    GraphSample sample = make_workload(nodes, kNodeDim);
    Model model = make_model(kind, kNodeDim, 0);

    bench::banner(
        "multi-die shard scaling",
        "Modeled cycles for one large graph split across P dies "
        "(ring lattice, k=2: ids carry locality). Contiguous shards "
        "cut only die boundaries; the modulo hash ignores locality "
        "and replicates nearly everything — the cut metrics predict "
        "which one scales.");
    std::printf("graph: %u nodes / %zu edges, model %s, %u-hop halo\n\n",
                sample.graph.num_nodes, sample.num_edges(),
                model_name(kind), ShardedEngine::message_hops(model));

    const std::uint32_t shard_counts[] = {1, 2, 4, 8};
    const ShardStrategy strategies[] = {ShardStrategy::kContiguous,
                                        ShardStrategy::kModulo};

    std::printf("%-12s %7s %14s %12s %9s %8s %8s\n", "strategy",
                "shards", "cycles", "comm", "speedup", "cut", "repl");
    bench::rule(76);

    std::vector<Point> points;
    for (ShardStrategy strategy : strategies) {
        std::uint64_t base_cycles = 0;
        for (std::uint32_t shards : shard_counts) {
            ShardConfig cfg;
            cfg.num_shards = shards;
            cfg.strategy = strategy;
            ShardedRunResult r =
                ShardedEngine(model, {}, cfg).run(sample);
            if (shards == 1)
                base_cycles = r.stats.total_cycles;
            Point p;
            p.strategy = shard_strategy_name(strategy);
            p.shards = shards;
            p.cycles = r.stats.total_cycles;
            p.comm_cycles = r.stats.comm_cycles;
            p.speedup = static_cast<double>(base_cycles) /
                        static_cast<double>(r.stats.total_cycles);
            p.cut_fraction =
                static_cast<double>(r.cut_edges) /
                static_cast<double>(sample.num_edges());
            p.replication = r.replication_factor;
            points.push_back(p);
            std::printf("%-12s %7u %14llu %12llu %8.2fx %8.3f %8.3f\n",
                        p.strategy, p.shards,
                        static_cast<unsigned long long>(p.cycles),
                        static_cast<unsigned long long>(p.comm_cycles),
                        p.speedup, p.cut_fraction, p.replication);
        }
        bench::rule(76);
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"shard_scaling\",\n"
           << "  \"nodes\": " << sample.graph.num_nodes << ",\n"
           << "  \"edges\": " << sample.num_edges() << ",\n"
           << "  \"model\": \"" << model_name(kind) << "\",\n"
           << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            os << "    {\"strategy\": \"" << p.strategy
               << "\", \"shards\": " << p.shards
               << ", \"cycles\": " << p.cycles
               << ", \"comm_cycles\": " << p.comm_cycles
               << ", \"speedup\": " << p.speedup
               << ", \"cut_fraction\": " << p.cut_fraction
               << ", \"replication\": " << p.replication << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
