/**
 * @file
 * Ablation: adapter-to-MP queue depth (the multi-queue dataflow's key
 * buffering resource, paper Fig. 3(b)).
 *
 * Sweeps the FIFO depth and reports latency, adapter stall cycles, and
 * peak queue occupancy. Shallow queues throttle the NT output stream
 * through multicast backpressure; past a modest depth the pipeline is
 * compute-bound and deeper queues only cost BRAM. Also reports the
 * cross-graph streaming throughput (StreamRunner) at each depth.
 */
#include "bench_common.h"
#include "serve/stream.h"

using namespace flowgnn;

int
main()
{
    bench::banner(
        "Ablation — adapter-to-MP queue depth (GIN on MolHIV, GCN on "
        "HEP)",
        "Depth 1 models a bare register; the default is 8. Latency "
        "averaged over 48 / 24 streamed graphs.");

    struct Case {
        DatasetKind dataset;
        ModelKind model;
        std::size_t graphs;
    };
    const Case cases[] = {
        {DatasetKind::kMolHiv, ModelKind::kGin, 48},
        {DatasetKind::kHep, ModelKind::kGcn, 24},
    };

    for (const auto &c : cases) {
        GraphSample probe = make_sample(c.dataset, 0);
        Model model =
            make_model(c.model, probe.node_dim(), probe.edge_dim());
        std::printf("--- %s on %s ---\n", model_name(c.model),
                    dataset_spec(c.dataset).name);
        std::printf("%-6s | %12s | %14s | %10s | %14s\n", "depth",
                    "latency (ms)", "stalls/graph", "peak occ.",
                    "stream (g/s)");
        bench::rule(70);
        for (std::size_t depth : {1u, 2u, 4u, 8u, 16u, 64u}) {
            EngineConfig cfg;
            cfg.queue_depth = depth;
            InferenceService service(model, cfg);

            SampleStream stream(c.dataset, c.graphs);
            std::vector<std::future<RunResult>> futures;
            futures.reserve(stream.size());
            for (std::size_t i = 0; i < stream.size(); ++i)
                futures.push_back(service.submit(stream.next()));

            double stalls = 0.0;
            std::size_t peak = 0;
            double latency = 0.0;
            for (auto &future : futures) {
                RunResult r = future.get();
                latency += r.latency_ms();
                stalls +=
                    static_cast<double>(r.stats.adapter_stall_cycles);
                peak = std::max(peak, r.stats.queue_peak_occupancy);
            }
            latency /= c.graphs;
            stalls /= c.graphs;

            StreamRunner runner(service);
            SampleStream stream2(c.dataset, c.graphs);
            StreamRunStats st = runner.run(stream2, c.graphs);

            std::printf("%-6zu | %12.4f | %14.1f | %10zu | %14.0f\n",
                        depth, latency, stalls, peak,
                        st.graphs_per_second(300.0));
        }
        bench::rule(70);
    }
    std::printf("Expected: stalls collapse by depth ~8 and latency "
                "flattens — the default depth is sufficient.\n");
    return 0;
}
