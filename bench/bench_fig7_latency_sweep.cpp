/**
 * @file
 * Reproduces paper Fig. 7: average per-graph latency on MolHIV and
 * MolPCBA for all six models — FlowGNN at batch 1 vs the GPU model
 * swept over batch sizes 1..1024 and the CPU at batch 1. The
 * qualitative claims to check: FlowGNN wins by orders of magnitude at
 * batch 1, the GPU approaches or passes it around batch 64-256 for
 * GCN/GIN/PNA, and GAT/DGN never catch up.
 */
#include "bench_common.h"
#include "perf/baselines.h"

using namespace flowgnn;

namespace {

// Fig. 7 FlowGNN per-graph latencies read off the plots (ms).
double
paper_flowgnn_ms(ModelKind kind)
{
    switch (kind) {
      case ModelKind::kGin: return 0.05;
      case ModelKind::kGinVn: return 0.06;
      case ModelKind::kGcn: return 0.02;
      case ModelKind::kGat: return 0.03;
      case ModelKind::kPna: return 0.04;
      case ModelKind::kDgn: return 0.06;
      default: return 0.0;
    }
}

void
run_dataset(DatasetKind dataset, std::size_t graphs)
{
    const std::uint32_t batches[] = {1, 4, 16, 64, 256, 1024};
    GraphSample probe = make_sample(dataset, 0);

    std::printf("--- %s ---\n", dataset_spec(dataset).name);
    std::printf("%-7s | %9s | %9s |", "Model", "FlowGNN",
                "(paper)");
    for (std::uint32_t b : batches)
        std::printf(" GPU@%-5u |", b);
    std::printf(" %8s | crossover\n", "CPU@1");
    bench::rule(118);

    for (ModelKind kind : kPaperModels) {
        Model model =
            make_model(kind, probe.node_dim(), probe.edge_dim());
        bench::StreamResult fg =
            bench::run_stream(model, {}, dataset, graphs);
        GraphSample prepared = model.prepare(probe);
        CpuModel cpu(kind);
        GpuModel gpu(kind);

        std::printf("%-7s | %7.4f   | %7.4f   |",
                    model_name(kind), fg.avg_latency_ms,
                    paper_flowgnn_ms(kind));
        std::uint32_t crossover = 0;
        for (std::uint32_t b : batches) {
            double g = gpu.latency_ms(model, prepared, b);
            if (crossover == 0 && g < fg.avg_latency_ms)
                crossover = b;
            std::printf(" %9.4f |", g);
        }
        std::printf(" %8.3f | ", cpu.latency_ms(model, prepared));
        if (crossover == 0)
            std::printf("never (GPU loses at all batch sizes)\n");
        else
            std::printf("batch %u\n", crossover);
    }
    bench::rule(118);
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 7 — latency per graph vs GPU batch size (ms)",
        "FlowGNN: measured batch-1 cycle simulation; GPU/CPU: "
        "calibrated analytical baselines.");
    run_dataset(DatasetKind::kMolHiv, 64);
    run_dataset(DatasetKind::kMolPcba, 64);
    std::printf("Paper claims: FlowGNN 53.4-477.6x faster than GPU at "
                "batch 1; consistently faster up to batch 64; GAT/DGN "
                "faster even at batch 1024.\n");
    return 0;
}
