/**
 * @file
 * Host-side ingestion/planning speed on an on-disk FGNB graph: the
 * wall-clock and peak-RSS budget of everything that happens *before*
 * the modeled accelerator cycles — open+verify, feature attach,
 * partition+ghost-plan, and the modeled multi-die run — measured on
 * the out-of-core mmap path (io::GraphView -> SampleRef, nothing
 * materialized in RAM).
 *
 *   ./bench_host_speed --graph-file PATH [--json PATH] [--threads T]
 *                      [--shards P] [--strategy NAME] [--restream N]
 *                      [--compare-in-memory] [--trace PATH]
 *                      [--metrics PATH]
 *
 * --trace captures the run as a Chrome trace (io/shard/ghost spans +
 * the modeled per-die timeline); --metrics dumps the metrics registry
 * (.prom -> Prometheus text, else JSON).
 *
 * Stages (each row reports seconds, VmRSS after the stage, and the
 * process-lifetime VmHWM):
 *  - open     GraphView: mmap, header/endpoint validation, payload
 *             checksum (chunked in parallel on v2 files)
 *  - features deterministic Gaussian features when the file stores
 *             none (same (seed, dim) policy as load_graph_sample)
 *  - plan     shard_plan_assignment (fennel + restream passes reuse
 *             one undirected CSR) + make_ghost_plan, all off the view
 *  - run      run_ghost_plan: global functional engine pass + per-die
 *             structural pricing
 *
 * --compare-in-memory additionally runs the identical chain through
 * the copying loader (load_graph_sample -> GraphSample) and asserts
 * the out-of-core result is bit-identical — embeddings, prediction,
 * cycles, and cut. That differential is the bench's correctness gate;
 * the exit code reflects it.
 *
 * --json writes a machine-readable record (stages, totals, host core
 * count) consumed by CI as a workflow artifact so the host-speed
 * trajectory is tracked per commit.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ghost/ghost_engine.h"
#include "io/graph_view.h"
#include "io/load.h"
#include "obs/stage_profile.h"
#include "obs/trace_session.h"

namespace {

using namespace flowgnn;

double
mb(long kb)
{
    return static_cast<double>(kb) / 1024.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string graph_file;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    unsigned threads = 0;
    std::uint32_t shards = 8;
    std::uint32_t restream = 3;
    ShardStrategy strategy = ShardStrategy::kFennel;
    bool compare_in_memory = false;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--graph-file") && a + 1 < argc)
            graph_file = argv[++a];
        else if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
        else if (!std::strcmp(argv[a], "--trace") && a + 1 < argc)
            trace_path = argv[++a];
        else if (!std::strcmp(argv[a], "--metrics") && a + 1 < argc)
            metrics_path = argv[++a];
        else if (!std::strcmp(argv[a], "--threads") && a + 1 < argc)
            threads = static_cast<unsigned>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--shards") && a + 1 < argc)
            shards = static_cast<std::uint32_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--restream") && a + 1 < argc)
            restream =
                static_cast<std::uint32_t>(std::atoll(argv[++a]));
        else if (!std::strcmp(argv[a], "--strategy") && a + 1 < argc) {
            try {
                strategy = shard_strategy_from_name(argv[++a]);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 1;
            }
        } else if (!std::strcmp(argv[a], "--compare-in-memory"))
            compare_in_memory = true;
        else {
            std::fprintf(
                stderr,
                "usage: bench_host_speed --graph-file PATH "
                "[--json PATH] [--threads T] [--shards P] "
                "[--strategy NAME] [--restream N] "
                "[--compare-in-memory] [--trace PATH] "
                "[--metrics PATH]\n");
            return 1;
        }
    }
    if (graph_file.empty() || shards == 0) {
        std::fprintf(stderr, "error: --graph-file is required and "
                             "--shards must be >= 1\n");
        return 1;
    }

    std::unique_ptr<obs::TraceSession> session;
    if (!trace_path.empty()) {
        session = std::make_unique<obs::TraceSession>();
        session->install();
    }

    obs::StageProfiler profiler(obs::MetricsRegistry::global());
    const auto t_start = std::chrono::steady_clock::now();
    auto timed = [&](const char *name, auto &&fn) {
        profiler.stage(name, fn);
        const obs::StageProfile &s = profiler.stages().back();
        std::printf("%-10s %9.3f s   rss %8.1f MB   peak %8.1f MB\n",
                    name, s.seconds, mb(s.rss_kb), mb(s.hwm_kb));
        std::fflush(stdout);
    };

    std::printf("\n=== FlowGNN host-speed: out-of-core ingestion & "
                "planning ===\n");
    std::printf("graph file: %s\nthreads: %u (host cores: %u), "
                "P=%u %s +%u restream, ghost mode\n\n",
                graph_file.c_str(), threads,
                std::thread::hardware_concurrency(), shards,
                shard_strategy_name(strategy), restream);

    try {
        constexpr std::size_t kNodeDim = 16;
        constexpr std::uint64_t kFeatureSeed = 0x5EED;

        // ---- open: mmap + validate + checksum ----
        std::unique_ptr<io::GraphView> view;
        timed("open", [&] {
            view = std::make_unique<io::GraphView>(
                graph_file, io::GraphViewOptions{.threads = threads});
        });

        SampleRef sample = view->sample();

        // ---- features: attach when the file stores none ----
        Matrix generated;
        timed("features", [&] {
            if (sample.node_dim == 0) {
                generated = gaussian_features(view->num_nodes(),
                                              kNodeDim, kFeatureSeed);
                sample.node_features = generated.data();
                sample.node_dim = kNodeDim;
            }
        });

        Model model = make_model(ModelKind::kGcn16, sample.node_dim,
                                 sample.edge_dim);

        ShardConfig cfg;
        cfg.num_shards = shards;
        cfg.strategy = strategy;
        cfg.mode = ShardMode::kGhostExchange;
        cfg.restream_passes = restream;

        // ---- plan: partition (adjacency reused across restreams)
        // + ghost extraction, all straight off the mmap view ----
        GhostPlan plan;
        timed("plan", [&] {
            plan = make_ghost_plan(model, sample, cfg, threads);
        });
        const std::size_t cut_edges = plan.cut_edges;
        const double replication = plan.replication_factor;

        // ---- run: functional pass + per-die structural pricing ----
        ShardedRunResult result;
        timed("run", [&] {
            result = run_ghost_plan(model, EngineConfig{}, sample,
                                    std::move(plan), RunOptions{},
                                    cfg.link, threads);
        });

        const double total_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t_start)
                .count();
        const long peak_kb = obs::read_memory_stats().hwm_kb;
        std::printf("%-10s %9.3f s   peak %8.1f MB\n", "total",
                    total_seconds, mb(peak_kb));

        const double cut_fraction =
            sample.num_edges() == 0
                ? 0.0
                : static_cast<double>(cut_edges) /
                      static_cast<double>(sample.num_edges());
        std::printf("\ngraph: %u nodes / %zu edges  cut %.4f  "
                    "repl %.3f  cycles %llu  prediction %.6f\n",
                    view->num_nodes(), view->num_edges(), cut_fraction,
                    replication,
                    static_cast<unsigned long long>(
                        result.stats.total_cycles),
                    result.prediction);

        // ---- differential: identical chain via the copying loader --
        bool match = true;
        if (compare_in_memory) {
            std::printf("\ncomparing against the in-memory "
                        "(GraphSample) chain...\n");
            LoadOptions lo;
            lo.node_dim = kNodeDim;
            lo.feature_seed = kFeatureSeed;
            GraphSample mem = load_graph_sample(graph_file, lo);
            GhostPlan mem_plan = make_ghost_plan(model, mem, cfg);
            ShardedRunResult mem_result = run_ghost_plan(
                model, EngineConfig{}, mem, std::move(mem_plan),
                RunOptions{}, cfg.link);
            match = mem_result.embeddings == result.embeddings &&
                    mem_result.prediction == result.prediction &&
                    mem_result.stats.total_cycles ==
                        result.stats.total_cycles &&
                    mem_result.cut_edges == result.cut_edges;
            std::printf("out-of-core vs in-memory: %s\n",
                        match ? "bit-identical" : "MISMATCH");
        }

        if (!json_path.empty()) {
            std::ofstream os(json_path);
            os << "{\n  \"bench\": \"host_speed\",\n"
               << "  \"graph\": \"" << graph_file << "\",\n"
               << "  \"nodes\": " << view->num_nodes() << ",\n"
               << "  \"edges\": " << view->num_edges() << ",\n"
               << "  \"fgnb_version\": " << view->version() << ",\n"
               << "  \"threads\": " << threads << ",\n"
               << "  \"host_cores\": "
               << std::thread::hardware_concurrency() << ",\n"
               << "  \"shards\": " << shards << ",\n"
               << "  \"strategy\": \"" << shard_strategy_name(strategy)
               << "\",\n"
               << "  \"restream\": " << restream << ",\n"
               << "  \"total_seconds\": " << total_seconds << ",\n"
               << "  \"peak_rss_mb\": " << mb(peak_kb) << ",\n"
               << "  \"cut_fraction\": " << cut_fraction << ",\n"
               << "  \"replication\": " << replication << ",\n"
               << "  \"total_cycles\": " << result.stats.total_cycles
               << ",\n"
               << "  \"compare_in_memory\": "
               << (compare_in_memory ? (match ? "\"bit-identical\""
                                              : "\"MISMATCH\"")
                                     : "null")
               << ",\n  \"stages\": ";
            profiler.write_json_array(os, "    ");
            os << "\n}\n";
            std::printf("\nwrote %s\n", json_path.c_str());
        }

        if (session) {
            std::ofstream os(trace_path);
            session->write_chrome_trace(os);
            std::printf("wrote Chrome trace %s (%zu records)\n",
                        trace_path.c_str(), session->recorded());
        }
        if (!metrics_path.empty()) {
            obs::MetricsSnapshot snap =
                obs::MetricsRegistry::global()->snapshot();
            std::ofstream os(metrics_path);
            if (metrics_path.size() >= 5 &&
                metrics_path.compare(metrics_path.size() - 5, 5,
                                     ".prom") == 0)
                snap.write_prometheus(os);
            else
                snap.write_json(os);
            std::printf("wrote metrics %s\n", metrics_path.c_str());
        }

        return match ? 0 : 2;
    } catch (const GraphFileError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
