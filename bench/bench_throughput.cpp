/**
 * @file
 * Streaming throughput for the real-time deployment model: graphs
 * arrive consecutively; the input DMA of graph i+1 overlaps the
 * compute of graph i (StreamRunner). Reports graphs/s per model and
 * dataset plus the load/compute overlap gain — the capacity numbers a
 * deployment (e.g. the HEP trigger) actually provisions against.
 */
#include "bench_common.h"
#include "serve/stream.h"
#include "serve/service.h"

using namespace flowgnn;

int
main()
{
    bench::banner(
        "Streaming throughput (batch-1, consecutive graphs)",
        "Graphs/s at 300 MHz with cross-graph load/compute overlap; "
        "paper default configuration (2 NT / 4 MP).");

    struct Case {
        DatasetKind dataset;
        std::size_t graphs;
    };
    const Case cases[] = {
        {DatasetKind::kMolHiv, 64},
        {DatasetKind::kHep, 32},
    };

    for (const auto &c : cases) {
        GraphSample probe = make_sample(c.dataset, 0);
        std::printf("--- %s ---\n", dataset_spec(c.dataset).name);
        std::printf("%-7s | %14s | %14s | %12s | %10s\n", "Model",
                    "latency (ms)", "throughput g/s", "overlap gain",
                    "graphs");
        bench::rule(72);
        for (ModelKind kind : kPaperModels) {
            Model model =
                make_model(kind, probe.node_dim(), probe.edge_dim());
            InferenceService service(model);
            StreamRunner runner(service);
            SampleStream stream(c.dataset, c.graphs);
            StreamRunStats st = runner.run(stream, c.graphs);
            std::printf("%-7s | %14.4f | %14.0f | %11.3fx | %10zu\n",
                        model_name(kind),
                        st.avg_latency_cycles / 3e5,
                        st.graphs_per_second(300.0),
                        st.throughput_speedup(), st.graphs);
        }
        bench::rule(72);
    }
    std::printf("The HEP trigger budget of one event per 25 ns x 10k "
                "buffer slots corresponds to ~4k graphs/s sustained; "
                "every model clears it by 2-9x.\n");
    return 0;
}
