/**
 * @file
 * SLO serving study: response-time p99 vs the deadline, goodput, and
 * die provisioning for an open-loop arrival trace with a diurnal
 * rhythm and a 10x burst window, replayed through the cycle-domain
 * schedule simulator under three policies — FIFO gang with EASY
 * backfill, space sharing, and EDF with layer-boundary preemption —
 * each with the elastic autoscaler off (static 8-die pool) and on
 * (2 dies growing to 8 under queue pressure).
 *
 * Everything downstream of the one measured engine run is exact cycle
 * arithmetic: the arrival trace is seeded Lewis-Shedler thinning and
 * the simulator is deterministic, so the emitted JSON is bit-stable
 * across runs and machines — CI tracks it as an artifact without
 * timing noise.
 *
 *   ./bench_slo_serving [--scale N] [--json PATH]
 *
 * --scale multiplies the per-job graph size (default 1 keeps CI
 * fast); the arrival rate is derived from the measured job duration,
 * so the offered load shape is scale-invariant.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pool/arrivals.h"
#include "pool/pool_energy.h"
#include "pool/schedule_sim.h"
#include "shard/sharded_engine.h"

namespace {

using namespace flowgnn;

struct ServingPoint {
    std::string label;
    bool elastic = false;
    std::uint64_t p50_cycles = 0; ///< interactive response percentile
    std::uint64_t p99_cycles = 0; ///< interactive response percentile
    double goodput = 0.0;       ///< fraction of jobs meeting their SLO
    double goodput_inter = 0.0; ///< interactive class only
    double goodput_batch = 0.0; ///< batch class only
    std::size_t misses = 0;
    std::size_t preemptions = 0;
    std::uint64_t makespan = 0;
    double provisioned_die_mcycles = 0.0;
    double idle_energy_mj = 0.0;
};

std::uint64_t
percentile(std::vector<std::uint64_t> v, double q)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = std::min(
        v.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(v.size())));
    return v[idx];
}

/** Integral of the active-die cap over [0, makespan), in die-cycles. */
double
provisioned_die_cycles(const SimResult &r, std::size_t static_dies)
{
    if (r.active_timeline.empty())
        return static_cast<double>(static_dies) *
               static_cast<double>(r.makespan);
    double area = 0.0;
    for (std::size_t i = 0; i < r.active_timeline.size(); ++i) {
        const std::uint64_t t0 = r.active_timeline[i].first;
        const std::uint64_t t1 = i + 1 < r.active_timeline.size()
            ? r.active_timeline[i + 1].first
            : r.makespan;
        if (t1 > t0)
            area += static_cast<double>(r.active_timeline[i].second) *
                static_cast<double>(t1 - t0);
    }
    return area;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t scale = 1;
    std::string json_path;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--scale") && a + 1 < argc)
            scale = static_cast<std::uint32_t>(std::atoi(argv[++a]));
        else if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
    }
    if (scale == 0)
        scale = 1;

    constexpr std::uint32_t kDies = 8;
    constexpr std::size_t kStaticBase = 2; // elastic pool's start
    Model model = make_model(ModelKind::kGcn16, 16, 0);
    EngineConfig cfg;
    cfg.p_node = 1;

    // ---- One measured job: everything else is derived cycles. ----
    GraphSample unit =
        bench::make_lattice_workload(3000 * scale, 16, 0x510);
    Engine engine(model, cfg);
    const std::uint64_t job_cycles =
        engine.run(unit).stats.total_cycles;
    GraphSample wide_sample =
        bench::make_lattice_workload(6000 * scale, 16, 0x511);
    ShardConfig two;
    two.num_shards = 2;
    ShardedRunResult wide_run =
        ShardedEngine(model, cfg, two).run(wide_sample);
    std::vector<std::uint64_t> wide_cycles;
    for (const ShardInfo &info : wide_run.shards)
        wide_cycles.push_back(info.stats.total_cycles +
                              info.comm_cycles);

    // Two service classes: interactive singles with a tight SLO (6x
    // the isolated latency — queueing headroom, not burst headroom)
    // and 2-wide batch jobs with a loose one. EDF has something to
    // trade during the spike: it lets batch lateness absorb the
    // backlog and preempts running batch work at GCN-16's 16 layer
    // boundaries when an interactive deadline is tighter.
    const std::uint64_t slo = 6 * job_cycles;
    const std::uint64_t batch_slo = 60 * job_cycles;
    const std::uint64_t boundary = job_cycles / 16;

    // ---- Open-loop arrivals: base load is ~50% of the 2-die static
    // pool; the middle-tenth burst offers 5x that pool's capacity. ----
    ArrivalPattern pattern;
    pattern.horizon_cycles = 400 * job_cycles;
    pattern.base_rate_per_mcycle = 0.5 *
        static_cast<double>(kStaticBase) * 1e6 /
        static_cast<double>(job_cycles);
    pattern.diurnal_amplitude = 0.4;
    pattern.diurnal_period_cycles = pattern.horizon_cycles / 2;
    pattern.burst_factor = 10.0;
    pattern.burst_start_cycles = pattern.horizon_cycles * 45 / 100;
    pattern.burst_len_cycles = pattern.horizon_cycles / 10;
    pattern.seed = 0x510;
    const std::vector<std::uint64_t> arrivals =
        generate_arrivals(pattern);

    std::vector<SimJob> trace;
    trace.reserve(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        SimJob job;
        if (i % 6 == 5) {
            job.task_cycles = wide_cycles; // 2-wide batch job
            job.deadline = batch_slo;
        } else {
            job.task_cycles = {job_cycles};
            job.deadline = slo;
        }
        job.arrival = arrivals[i];
        job.boundary_cycles = boundary;
        trace.push_back(std::move(job));
    }
    auto interactive = [&](std::size_t j) { return j % 6 != 5; };

    bench::banner(
        "SLO serving — p99 vs deadline under a 10x burst",
        "Open-loop diurnal arrivals with a mid-trace 10x spike, "
        "replayed in the cycle-domain simulator: FIFO-gang+backfill "
        "vs space-share vs EDF+preemption, with the elastic "
        "autoscaler off (static 8 dies) and on (2 -> 8 dies under "
        "queue pressure). Deterministic: seeded arrivals, modeled "
        "cycles.");
    std::printf("job: %llu cycles (x%u scale), interactive SLO %llu / "
                "batch SLO %llu cycles, %zu arrivals over %llu "
                "Mcycles (10x burst in [45%%, 55%%))\n\n",
                static_cast<unsigned long long>(job_cycles), scale,
                static_cast<unsigned long long>(slo),
                static_cast<unsigned long long>(batch_slo),
                trace.size(),
                static_cast<unsigned long long>(
                    pattern.horizon_cycles / 1'000'000));

    struct PolicyCase {
        const char *label;
        PoolPolicy policy;
        bool backfill;
        bool preempt;
    };
    const PolicyCase cases[] = {
        {"fifo-gang+bf", PoolPolicy::kFifoGang, true, false},
        {"space-share", PoolPolicy::kSpaceShare, false, false},
        {"edf+preempt", PoolPolicy::kEdf, false, true},
    };

    std::vector<ServingPoint> points;
    for (const PolicyCase &pc : cases) {
        for (bool elastic : {false, true}) {
            SimOptions opt;
            opt.num_dies = kDies;
            opt.policy = pc.policy;
            opt.easy_backfill = pc.backfill;
            opt.enable_preemption = pc.preempt;
            opt.preempt_overhead_cycles = boundary / 8;
            AutoscalerPolicy scaler(
                [] {
                    AutoscalerConfig ac;
                    ac.min_dies = kStaticBase;
                    ac.max_dies = kDies;
                    ac.step_up = 2;
                    ac.step_down = 1;
                    ac.cooldown_windows = 1;
                    ac.scale_up_queue_per_die = 1.0;
                    ac.scale_down_util = 0.4;
                    return ac;
                }(),
                kStaticBase);
            if (elastic) {
                opt.autoscaler = &scaler;
                opt.window_cycles = 2 * job_cycles;
            }
            SimResult r = simulate_pool_schedule(trace, opt);

            ServingPoint p;
            p.label = pc.label;
            p.elastic = elastic;
            std::vector<std::uint64_t> response;
            response.reserve(trace.size());
            std::size_t met = 0, met_i = 0, met_b = 0;
            std::size_t n_i = 0, n_b = 0;
            for (std::size_t j = 0; j < trace.size(); ++j) {
                const bool ok = r.lateness(j) == 0;
                met += ok;
                if (interactive(j)) {
                    response.push_back(r.job_finish(j) -
                                       trace[j].arrival);
                    ++n_i;
                    met_i += ok;
                } else {
                    ++n_b;
                    met_b += ok;
                }
            }
            p.p50_cycles = percentile(response, 0.50);
            p.p99_cycles = percentile(response, 0.99);
            p.goodput = static_cast<double>(met) /
                static_cast<double>(trace.size());
            p.goodput_inter =
                static_cast<double>(met_i) / static_cast<double>(n_i);
            p.goodput_batch =
                static_cast<double>(met_b) / static_cast<double>(n_b);
            p.misses = r.deadline_misses;
            p.preemptions = r.preemptions;
            p.makespan = r.makespan;
            p.provisioned_die_mcycles =
                provisioned_die_cycles(r, kDies) / 1e6;
            p.idle_energy_mj =
                pool_schedule_energy(r, cfg.clock_mhz).idle_mj;
            points.push_back(std::move(p));
        }
    }

    std::printf("%-14s %-8s %9s %9s %7s %7s %7s %7s %6s %12s\n",
                "policy", "scaler", "p50/SLO", "p99/SLO", "inter%",
                "batch%", "total%", "misses", "preempt",
                "die-Mcycles");
    bench::rule(98);
    for (const ServingPoint &p : points)
        std::printf("%-14s %-8s %8.2fx %8.2fx %6.1f%% %6.1f%% "
                    "%6.1f%% %7zu %6zu %12.1f\n",
                    p.label.c_str(), p.elastic ? "elastic" : "static",
                    static_cast<double>(p.p50_cycles) /
                        static_cast<double>(slo),
                    static_cast<double>(p.p99_cycles) /
                        static_cast<double>(slo),
                    100.0 * p.goodput_inter, 100.0 * p.goodput_batch,
                    100.0 * p.goodput, p.misses, p.preemptions,
                    p.provisioned_die_mcycles);
    bench::rule(98);
    std::printf("static pools hold 8 dies for the whole trace; the "
                "elastic rows buy burst capacity only while queue "
                "pressure lasts.\n");

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"slo_serving\",\n"
           << "  \"scale\": " << scale << ",\n"
           << "  \"dies\": " << kDies << ",\n"
           << "  \"job_cycles\": " << job_cycles << ",\n"
           << "  \"slo_cycles\": " << slo << ",\n"
           << "  \"batch_slo_cycles\": " << batch_slo << ",\n"
           << "  \"arrivals\": " << trace.size() << ",\n"
           << "  \"burst_factor\": " << pattern.burst_factor << ",\n"
           << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const ServingPoint &p = points[i];
            os << "    {\"policy\": \"" << p.label
               << "\", \"autoscaler\": "
               << (p.elastic ? "true" : "false")
               << ", \"p50_cycles\": " << p.p50_cycles
               << ", \"p99_cycles\": " << p.p99_cycles
               << ", \"goodput\": " << p.goodput
               << ", \"goodput_interactive\": " << p.goodput_inter
               << ", \"goodput_batch\": " << p.goodput_batch
               << ", \"deadline_misses\": " << p.misses
               << ", \"preemptions\": " << p.preemptions
               << ", \"makespan\": " << p.makespan
               << ", \"provisioned_die_mcycles\": "
               << p.provisioned_die_mcycles
               << ", \"idle_energy_mj\": " << p.idle_energy_mj << "}"
               << (i + 1 < points.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
