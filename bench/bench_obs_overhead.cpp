/**
 * @file
 * Gates the cost of observability instrumentation left compiled into
 * the hot paths: with NO TraceSession installed, a Span is one
 * relaxed atomic load (TraceSession::current()) and a branch, and the
 * serving fabric must not lose more than 2% of throughput to those
 * checks.
 *
 *   ./bench_obs_overhead [--json PATH] [--graphs N]
 *
 * Method: a same-binary A/B cannot isolate "the binary without
 * instrumentation", and on small shared runners macro timing is too
 * noisy to resolve sub-percent deltas. So the gate is built from two
 * direct measurements:
 *   1. the disabled-path cost of one Span (measured over millions of
 *      constructions with no session installed), and
 *   2. the number of instrumentation sites actually hit per graph
 *      (counted by installing a session and reading back its record
 *      count), against the per-graph wall time of the
 *      bench_throughput-style serving workload.
 * modeled overhead = sites/graph x disabled-span cost / graph wall
 * time, gated < 2%. The enabled-tracing macro delta is also reported
 * (informational: that is the *opt-in* cost of capturing a trace).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/trace_session.h"
#include "serve/service.h"
#include "serve/stream.h"

using namespace flowgnn;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Streams `graphs` molhiv graphs through a 2-replica service and
 * returns the wall seconds. */
double
run_workload(const Model &model, std::size_t graphs)
{
    InferenceService service(model);
    SampleStream stream(DatasetKind::kMolHiv, graphs);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(graphs);
    const double t0 = now_s();
    for (std::size_t i = 0; i < graphs; ++i)
        futures.push_back(service.submit(stream.next()));
    for (auto &f : futures)
        f.get();
    return now_s() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::size_t graphs = 256;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--json") && a + 1 < argc)
            json_path = argv[++a];
        else if (!std::strcmp(argv[a], "--graphs") && a + 1 < argc)
            graphs = static_cast<std::size_t>(std::atoll(argv[++a]));
        else {
            std::fprintf(stderr, "usage: bench_obs_overhead "
                                 "[--json PATH] [--graphs N]\n");
            return 1;
        }
    }

    std::printf("=== flowgnn::obs overhead (tracing disabled) ===\n\n");

    // ---- 1. Disabled-path Span cost: no session installed. ----
    constexpr std::size_t kSpanIters = 20'000'000;
    const double span_t0 = now_s();
    for (std::size_t i = 0; i < kSpanIters; ++i)
        obs::Span span(obs::Track::kServe, "probe");
    const double disabled_span_ns =
        (now_s() - span_t0) * 1e9 / kSpanIters;
    std::printf("disabled Span cost:   %.2f ns "
                "(current() load + branch, x%zu)\n",
                disabled_span_ns, kSpanIters);

    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model model =
        make_model(ModelKind::kGin, probe.node_dim(), probe.edge_dim());

    // ---- 2. Baseline workload: no session, warm then measure. ----
    run_workload(model, graphs / 4); // warmup
    const double base_s = run_workload(model, graphs);
    const double per_graph_ms = base_s * 1e3 / graphs;
    std::printf("baseline:             %.3f s for %zu graphs "
                "(%.3f ms/graph)\n",
                base_s, graphs, per_graph_ms);

    // ---- 3. Sites hit per graph, from an enabled session. ----
    double enabled_s;
    std::size_t recorded;
    {
        obs::TraceSession session(
            obs::TraceOptions{.buffer_capacity = 1 << 20});
        session.install();
        enabled_s = run_workload(model, graphs);
        session.uninstall();
        recorded = session.recorded();
    }
    const double sites_per_graph =
        static_cast<double>(recorded) / graphs;
    std::printf("enabled:              %.3f s (%zu records, %.1f "
                "spans/graph)\n",
                enabled_s, recorded, sites_per_graph);

    // ---- Gate: modeled disabled-session overhead < 2%. ----
    const double overhead =
        sites_per_graph * disabled_span_ns / (per_graph_ms * 1e6);
    const double enabled_delta = enabled_s / base_s - 1.0;
    const bool pass = overhead < 0.02;
    std::printf("\nmodeled disabled-session overhead: %.5f%% "
                "(gate < 2%%) -> %s\n",
                overhead * 100.0, pass ? "PASS" : "FAIL");
    std::printf("enabled-tracing macro delta:       %+.1f%% "
                "(informational; opt-in capture cost)\n",
                enabled_delta * 100.0);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n  \"bench\": \"obs_overhead\",\n"
           << "  \"graphs\": " << graphs << ",\n"
           << "  \"disabled_span_ns\": " << disabled_span_ns << ",\n"
           << "  \"per_graph_ms\": " << per_graph_ms << ",\n"
           << "  \"sites_per_graph\": " << sites_per_graph << ",\n"
           << "  \"modeled_overhead_fraction\": " << overhead << ",\n"
           << "  \"enabled_delta_fraction\": " << enabled_delta
           << ",\n"
           << "  \"gate\": \"" << (pass ? "pass" : "fail")
           << "\"\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return pass ? 0 : 2;
}
