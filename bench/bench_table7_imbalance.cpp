/**
 * @file
 * Reproduces paper Table VII: MP workload imbalance (max-min edge work
 * between any two MP units, as a fraction of total) for Pedge from 2
 * to 64 across all seven datasets. Purely structural: computed from
 * the destination-bank assignment dst % Pedge with zero
 * pre-processing, exactly as the hardware distributes edges.
 */
#include "bench_common.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "tensor/rng.h"

#include <algorithm>
#include <numeric>

using namespace flowgnn;

namespace {

// Table VII published values (%), rows Pedge = 2..64.
const double kPaper[6][7] = {
    {6.41, 5.58, 2.47, 0.95, 0.40, 0.41, 0.04},
    {8.59, 7.78, 3.24, 3.83, 1.67, 2.21, 0.17},
    {8.82, 7.82, 3.30, 2.56, 2.69, 1.81, 0.28},
    {8.34, 7.62, 3.12, 2.72, 2.36, 1.23, 0.21},
    {7.37, 6.25, 3.75, 1.95, 1.68, 0.87, 0.21},
    {7.27, 6.28, 3.95, 1.82, 1.22, 0.82, 0.16},
};

double
dataset_imbalance(DatasetKind kind, std::uint32_t p_edge)
{
    const DatasetSpec &spec = dataset_spec(kind);
    if (spec.num_graphs == 1)
        return workload_imbalance(make_sample(kind, 0).graph, p_edge);
    // Multi-graph datasets: average the per-graph imbalance over a
    // sampled stream (each graph is processed independently).
    const std::size_t kGraphs = 200;
    double total = 0.0;
    for (std::size_t i = 0; i < kGraphs; ++i)
        total += workload_imbalance(make_sample(kind, i).graph, p_edge);
    return total / kGraphs;
}

} // namespace

int
main()
{
    bench::banner(
        "Table VII — MP workload imbalance vs Pedge (percent)",
        "Imbalance = (max - min) bank edge count / total edges; banks "
        "assigned by dst %% Pedge on the fly. paper/measured pairs.");

    const std::uint32_t p_values[] = {2, 4, 8, 16, 32, 64};

    std::printf("%-6s", "Pedge");
    for (DatasetKind kind : kAllDatasets)
        std::printf(" | %-15s", dataset_spec(kind).name);
    std::printf("\n");
    bench::rule(132);

    for (std::size_t r = 0; r < std::size(p_values); ++r) {
        std::printf("%-6u", p_values[r]);
        std::size_t col = 0;
        for (DatasetKind kind : kAllDatasets) {
            double measured =
                100.0 * dataset_imbalance(kind, p_values[r]);
            std::printf(" | %5.2f / %6.2f", kPaper[r][col], measured);
            ++col;
        }
        std::printf("\n");
    }
    bench::rule(132);
    std::printf("Paper finding preserved: imbalance stays below ~9%% on "
                "molecular sets and below ~4%% elsewhere.\n");

    // ---- Shard-strategy imbalance at die granularity -------------------
    // The same (max-min)/total metric one level up: edge work per die
    // under every ShardStrategy on a power-law graph, next to the cut
    // each strategy pays for it. The modular hash is balanced but cuts
    // most edges; the streaming partitioners trade a bounded node-count
    // imbalance (<= the 1.1 capacity slack) for the best cut.
    bench::banner(
        "Shard-strategy imbalance vs cut (Barabási–Albert, 20k nodes)",
        "Edge-work imbalance = (max - min) per-die edge count / total; "
        "maxload = most-loaded die's owned nodes / ideal share.");

    Rng rng(0xD1E);
    CooGraph graph = make_barabasi_albert(20000, 4, rng);
    const ShardStrategy strategies[] = {
        ShardStrategy::kModulo,        ShardStrategy::kContiguous,
        ShardStrategy::kGreedyBalanced, ShardStrategy::kBfsContiguous,
        ShardStrategy::kLdg,           ShardStrategy::kFennel,
        ShardStrategy::kHdrf,
    };

    std::printf("%-16s", "strategy");
    for (std::uint32_t p : {4u, 8u})
        std::printf(" | P=%u: imb%%  maxload    cut", p);
    std::printf("\n");
    bench::rule(76);
    for (ShardStrategy strategy : strategies) {
        std::printf("%-16s", shard_strategy_name(strategy));
        for (std::uint32_t p : {4u, 8u}) {
            auto assignment = shard_assignment(graph, p, strategy);
            double imb = workload_imbalance(
                bank_edge_counts(graph, assignment, p));
            std::vector<std::size_t> owned(p, 0);
            for (auto s : assignment)
                ++owned[s];
            double maxload =
                static_cast<double>(
                    *std::max_element(owned.begin(), owned.end())) /
                (static_cast<double>(graph.num_nodes) / p);
            std::printf(" |     %5.2f %8.3f %6.3f", 100.0 * imb,
                        maxload,
                        shard_cut_fraction(graph, assignment));
        }
        std::printf("\n");
    }
    bench::rule(76);
    return 0;
}
