/**
 * @file
 * Reproduces paper Fig. 10: design-space exploration over the four
 * parallelization parameters — Pnode x Pedge in {1,2,4}^2, Papply in
 * {1,2,4}, Pscatter in {1,2,4,8} (108 points) — GCN on MolHIV,
 * reported as speedup over the all-ones configuration.
 */
#include "bench_common.h"

using namespace flowgnn;

int
main()
{
    bench::banner(
        "Fig. 10 — DSE over Pnode/Pedge/Papply/Pscatter (GCN, MolHIV)",
        "Speedup over the Pnode=Pedge=Papply=Pscatter=1 baseline; 108 "
        "configurations. Paper's best point: 5.76x at "
        "Pnode=2 Pedge=4 Papply=4 Pscatter=8.");

    const std::size_t kGraphs = 12;
    GraphSample probe = make_sample(DatasetKind::kMolHiv, 0);
    Model gcn =
        make_model(ModelKind::kGcn, probe.node_dim(), probe.edge_dim());

    auto measure = [&](std::uint32_t pn, std::uint32_t pe,
                       std::uint32_t pa, std::uint32_t ps) {
        EngineConfig c;
        c.p_node = pn;
        c.p_edge = pe;
        c.p_apply = pa;
        c.p_scatter = ps;
        return bench::run_stream(gcn, c, DatasetKind::kMolHiv, kGraphs)
            .avg_cycles;
    };

    const std::uint32_t pn_vals[] = {1, 2, 4};
    const std::uint32_t pe_vals[] = {1, 2, 4};
    const std::uint32_t pa_vals[] = {1, 2, 4};
    const std::uint32_t ps_vals[] = {1, 2, 4, 8};

    double base = measure(1, 1, 1, 1);
    double best = 0.0;
    std::uint32_t best_cfg[4] = {1, 1, 1, 1};

    for (std::uint32_t pa : pa_vals) {
        for (std::uint32_t ps : ps_vals) {
            std::printf("Papply=%u Pscatter=%u  (rows: Pnode; cols: "
                        "Pedge 1/2/4)\n",
                        pa, ps);
            for (std::uint32_t pn : pn_vals) {
                std::printf("  Pnode=%u:", pn);
                for (std::uint32_t pe : pe_vals) {
                    double cycles = measure(pn, pe, pa, ps);
                    double speedup = base / cycles;
                    if (speedup > best) {
                        best = speedup;
                        best_cfg[0] = pn;
                        best_cfg[1] = pe;
                        best_cfg[2] = pa;
                        best_cfg[3] = ps;
                    }
                    std::printf("  %5.2fx", speedup);
                }
                std::printf("\n");
            }
        }
    }
    bench::rule(60);
    std::printf("Best measured: %.2fx at Pnode=%u Pedge=%u Papply=%u "
                "Pscatter=%u (paper: 5.76x at 2/4/4/8)\n",
                best, best_cfg[0], best_cfg[1], best_cfg[2], best_cfg[3]);
    return 0;
}
