#!/usr/bin/env bash
# Markdown link check: every relative link target in the repo's *.md
# files (root + docs/) must exist. Exists so a dangling reference like
# the DESIGN.md one that sat in the tree for four PRs fails CI instead
# of rotting. External (http/https/mailto) and pure-anchor links are
# skipped; "#section" fragments on relative links are stripped before
# the existence check. No dependencies beyond POSIX tools.
#
#   tools/check_md_links.sh [repo-root]     # exit 1 on any broken link
set -u

root="${1:-.}"
checked=0
# The broken-link marker escapes the grep|while subshell via the
# filesystem; clear any stale one from an interrupted earlier run
# before it can fail a clean tree.
rm -f "$root/.md_link_check_failed"
trap 'rm -f "$root/.md_link_check_failed"' EXIT

for md in "$root"/*.md "$root"/docs/*.md "$root"/bench/results/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Inline markdown links/images: capture the (...) target.
    grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' |
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"          # strip fragment
        path="${path%% *}"            # strip optional '... "title"'
        [ -n "$path" ] || continue
        # Resolve relative to the containing file ONLY — that is how
        # markdown renderers resolve links; a root-relative fallback
        # would hide exactly the dangling-link class this exists for.
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $md -> $target"
            # Propagate failure out of the pipeline subshell.
            touch "$root/.md_link_check_failed"
        fi
    done
    checked=$((checked + 1))
done

if [ -e "$root/.md_link_check_failed" ]; then
    rm -f "$root/.md_link_check_failed"
    echo "markdown link check FAILED"
    exit 1
fi
echo "markdown link check OK ($checked files)"
