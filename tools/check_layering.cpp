/**
 * @file
 * CLI for the include-layering lint (flowgnn::check leg 2): scans a
 * source root's #include graph and checks it against a layer spec.
 * All logic lives in src/check/layering.{h,cpp} so the fixture tests
 * exercise exactly what CI runs.
 *
 * Usage: check_layering <src-root> <layer-spec>
 * Exit:  0 clean, 1 violations (chains printed), 2 bad usage/spec.
 */
#include <iostream>

#include "check/layering.h"

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: check_layering <src-root> <layer-spec>\n";
        return 2;
    }
    return flowgnn::check::run_layering_check(argv[1], argv[2],
                                              std::cout);
}
